package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/storage"
)

func init() { register("progressivebench", ProgressiveBench) }

// ProgressiveBench measures the progressive streaming pipeline end to end:
// time to the first increment (what a dashboard user waits for), full-stream
// completion time across increment schedules, and the overhead of streaming
// versus the one-shot path over the same sample. Not a paper artifact; it
// tracks the online-aggregation machinery's cost on this hardware. Each
// case's ns/op lands in Report.Metrics, which verdict-bench -json persists
// (BENCH_progressive.json) — the CI perf-trajectory artifact for streaming.
func ProgressiveBench(o Options) (*Report, error) {
	rows := 200_000
	if o.Scale == Full {
		rows = 1_000_000
	}
	tb, err := progressiveBenchTable(rows, o.Seed)
	if err != nil {
		return nil, err
	}
	sample, err := aqp.BuildSample(tb, 0.5, 0, o.Seed+1)
	if err != nil {
		return nil, err
	}
	sys := core.NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), core.Config{})
	const sql = "SELECT AVG(v) FROM t WHERE x BETWEEN 10 AND 60"

	rep := &Report{
		ID:      "progressivebench",
		Title:   "Progressive streaming: time to first increment and full-stream cost",
		Columns: []string{"first rows", "increments", "first increment", "full stream", "one-shot", "overhead"},
	}

	// One-shot baseline: the same query without increments.
	if _, err := sys.Execute(sql); err != nil { // warm-up
		return nil, err
	}
	const reps = 3
	t0 := time.Now()
	for r := 0; r < reps; r++ {
		if _, err := sys.Execute(sql); err != nil {
			return nil, err
		}
	}
	oneShot := time.Since(t0) / reps
	rep.Metric("oneshot", float64(oneShot.Nanoseconds()))

	for _, firstRows := range []int{1024, 16384} {
		opts := core.ProgressiveOptions{FirstRows: firstRows}
		run := func() (first, total time.Duration, increments int, err error) {
			start := time.Now()
			_, err = sys.ExecuteProgressive(context.Background(), sql, opts,
				func(_ *core.Result, p core.Progress) bool {
					if p.Seq == 0 {
						first = time.Since(start)
					}
					increments++
					return true
				})
			total = time.Since(start)
			return first, total, increments, err
		}
		if _, _, _, err := run(); err != nil { // warm-up
			return nil, err
		}
		var first, total time.Duration
		var increments int
		for r := 0; r < reps; r++ {
			f, tt, n, err := run()
			if err != nil {
				return nil, err
			}
			first += f / reps
			total += tt / reps
			increments = n
		}
		rep.Add(fmt.Sprintf("%d", firstRows), fmt.Sprintf("%d", increments),
			first.Round(time.Microsecond).String(), total.Round(time.Microsecond).String(),
			oneShot.Round(time.Microsecond).String(), fmtX(float64(total)/float64(oneShot)))
		rep.Metric(fmt.Sprintf("first=%d/firstincrement", firstRows), float64(first.Nanoseconds()))
		rep.Metric(fmt.Sprintf("first=%d/fullstream", firstRows), float64(total.Nanoseconds()))
		rep.Metric(fmt.Sprintf("first=%d/increments", firstRows), float64(increments))
	}
	rep.Note("doubling prefix schedule over a %d-row sample; overhead is full-stream time over the one-shot path", sample.Data.Rows())
	return rep, nil
}

// progressiveBenchTable builds the streamed relation: a uniform numeric
// dimension and a correlated measure, shuffled so increments see the whole
// domain from the first prefix on.
func progressiveBenchTable(rows int, seed int64) (*storage.Table, error) {
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "v", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("t", schema)
	rng := randx.New(seed + 97)
	for i := 0; i < rows; i++ {
		x := rng.Uniform(0, 100)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(x),
			storage.Num(10 + x + rng.Normal(0, 2)),
		}); err != nil {
			return nil, err
		}
	}
	return tb, nil
}
