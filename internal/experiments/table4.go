package experiments

import (
	"fmt"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
)

func init() {
	register("table4", Table4SpeedupErrorReduction)
	register("figure4", Figure4RuntimeErrorCurves)
}

// table4Config is one (dataset, tier) combination of §8.3.
type table4Config struct {
	dataset string // "customer1" | "tpch"
	cached  bool
}

var table4Configs = []table4Config{
	{"customer1", true},
	{"customer1", false},
	{"tpch", true},
	{"tpch", false},
}

// buildFixture creates the fixture for a config, with the cost model scaled
// to paper-like full-scan latencies.
func buildFixture(o Options, c table4Config) (*fixture, error) {
	// Build once with a placeholder cost to learn the sample size, then
	// attach the properly scaled cost model.
	var (
		f   *fixture
		err error
	)
	if c.dataset == "customer1" {
		f, err = customer1Fixture(o, aqp.CachedCost)
	} else {
		f, err = tpchFixture(o, aqp.CachedCost)
	}
	if err != nil {
		return nil, err
	}
	cost := costFor(c.cached, f.engine.Sample().Rows())
	f.engine = aqp.NewEngine(f.table, f.engine.Sample(), cost)
	return f, nil
}

// Table4SpeedupErrorReduction reproduces Table 4: (top) time until a target
// error bound is reached, NoLearn vs Verdict, and the speedup; (bottom) the
// lowest error bound achieved within fixed time budgets and the error
// reduction. Targets and budgets are derived from each workload's achieved
// bound range so every cell stays finite at reproduction scale; the note
// records the paper's absolute values.
func Table4SpeedupErrorReduction(o Options) (*Report, error) {
	r := &Report{
		ID:    "table4",
		Title: "Speedup and error reduction of Verdict over NoLearn",
		Columns: []string{"Dataset", "Cached", "Metric", "Target/Budget",
			"NoLearn", "Verdict", "Gain"},
	}
	_, _, train, test := sizing(o)
	for _, c := range table4Configs {
		f, err := buildFixture(o, c)
		if err != nil {
			return nil, err
		}
		curves, _, err := runComparison(f, core.Config{}, train, test)
		if err != nil {
			return nil, err
		}
		if len(curves) == 0 {
			return nil, fmt.Errorf("table4: no curves for %+v", c)
		}
		// Targets are set per query, relative to that query's final raw
		// bound: queries in this workload differ widely in selectivity and
		// therefore in achievable bounds, and a single absolute target
		// (reachable instantly for some queries, never for others)
		// compresses the mean speedup toward 1. The paper's fixed absolute
		// targets play the same role on its more homogeneous error scales.
		// The tight factor (1.15×) forces NoLearn through nearly the whole
		// sample while a trained model can qualify within the first
		// batches — the regime of the paper's large speedups.
		for _, mult := range []float64{2.5, 1.15} {
			var tN, tV time.Duration
			for _, pts := range curves {
				final := pts[len(pts)-1].rawBound
				target := final * mult
				n, _ := timeToBound(pts, target, false)
				v, _ := timeToBound(pts, target, true)
				tN += n
				tV += v
			}
			tN /= time.Duration(len(curves))
			tV /= time.Duration(len(curves))
			speedup := float64(tN) / float64(tV)
			r.Add(f.label, yes(c.cached), "speedup",
				fmt.Sprintf("%.2f×final", mult), tN.Round(time.Millisecond).String(),
				tV.Round(time.Millisecond).String(), fmtX(speedup))
		}
		// Error reduction at fixed budgets: early and late in the scan.
		full := curves[0][len(curves[0])-1].simTime
		budgets := []time.Duration{f.engine.Cost().PlanOverhead + (full-f.engine.Cost().PlanOverhead)/8, full}
		for _, budget := range budgets {
			var bN, bV float64
			for _, pts := range curves {
				bN += boundWithinBudget(pts, budget, false)
				bV += boundWithinBudget(pts, budget, true)
			}
			bN /= float64(len(curves))
			bV /= float64(len(curves))
			r.Add(f.label, yes(c.cached), "error reduction",
				budget.Round(time.Millisecond).String(),
				fmtPct(bN), fmtPct(bV), fmtPct(reduction(bN, bV)))
		}
	}
	r.Note("paper: speedups up to 23.0× (Customer1, SSD) and error reductions 75.8–90.2%%; expect the same orderings here (SSD > cached, tight targets > loose, Customer1 > TPC-H) at smaller magnitudes — the finite-population nugget floors Verdict's bounds at reduced scale, a floor that vanishes at the paper's 100 GB+ scale")
	return r, nil
}

// Figure4RuntimeErrorCurves reproduces Figure 4: runtime vs average error
// bound and vs average actual error, for the four (dataset, tier) panels.
func Figure4RuntimeErrorCurves(o Options) (*Report, error) {
	r := &Report{
		ID:    "figure4",
		Title: "Runtime vs error bound / actual error (online aggregation)",
		Columns: []string{"Panel", "Runtime", "NoLearn bound", "Verdict bound",
			"NoLearn actual", "Verdict actual"},
	}
	_, _, train, test := sizing(o)
	for _, c := range table4Configs {
		f, err := buildFixture(o, c)
		if err != nil {
			return nil, err
		}
		curves, _, err := runComparison(f, core.Config{}, train, test)
		if err != nil {
			return nil, err
		}
		panel := fmt.Sprintf("%s/%s", f.label, tier(c.cached))
		// Average across queries per batch index.
		maxLen := 0
		for _, pts := range curves {
			if len(pts) > maxLen {
				maxLen = len(pts)
			}
		}
		// Sample ~6 points along the curve for the report.
		for _, bi := range curveSampleIndexes(maxLen) {
			var p curvePoint
			n := 0
			for _, pts := range curves {
				if bi < len(pts) {
					p.rawBound += pts[bi].rawBound
					p.impBound += pts[bi].impBound
					p.rawErr += pts[bi].rawErr
					p.impErr += pts[bi].impErr
					p.simTime = pts[bi].simTime
					n++
				}
			}
			if n == 0 {
				continue
			}
			fn := float64(n)
			r.Add(panel, p.simTime.Round(10*time.Millisecond).String(),
				fmtPct(p.rawBound/fn), fmtPct(p.impBound/fn),
				fmtPct(p.rawErr/fn), fmtPct(p.impErr/fn))
		}
	}
	r.Note("expected shape (paper Fig. 4): Verdict's curves sit below NoLearn's at every runtime, and both decay with runtime")
	return r, nil
}

func curveSampleIndexes(n int) []int {
	if n <= 6 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return []int{0, n / 5, 2 * n / 5, 3 * n / 5, 4 * n / 5, n - 1}
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func tier(cached bool) string {
	if cached {
		return "cached"
	}
	return "ssd"
}
