package experiments

import (
	"fmt"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
)

func init() { register("table5", Table5Overhead) }

// Table5Overhead reproduces Table 5: Verdict's runtime overhead (inference
// plus synopsis maintenance, measured in wall-clock time) relative to the
// simulated AQP latency, for cached and SSD tiers. It also reports the
// query-synopsis memory footprint of §8.5.
func Table5Overhead(o Options) (*Report, error) {
	r := &Report{
		ID:    "table5",
		Title: "Runtime overhead of Verdict",
		Columns: []string{"Tier", "NoLearn latency", "Verdict latency",
			"Overhead", "Overhead %"},
	}
	_, _, train, test := sizing(o)
	for _, cached := range []bool{true, false} {
		f, err := buildFixture(o, table4Config{dataset: "customer1", cached: cached})
		if err != nil {
			return nil, err
		}
		v := core.New(f.table, core.Config{})
		if err := trainOn(v, f.engine, f.sqls[:train]); err != nil {
			return nil, err
		}
		var sim time.Duration
		var overhead time.Duration
		n := 0
		for _, sql := range f.sqls[train:min(train+test, len(f.sqls))] {
			snips, err := snippetsOf(f.engine, sql, v.Config().Nmax)
			if err != nil {
				return nil, err
			}
			upd := f.engine.RunToCompletion(snips)
			t0 := time.Now()
			for i, sn := range snips {
				raw := aqp.Sanitize(upd.Estimates[i])
				_ = v.Infer(sn, raw)
				if upd.Valid[i] {
					v.Record(sn, raw)
				}
			}
			overhead += time.Since(t0)
			sim += upd.SimTime
			n++
		}
		if n == 0 {
			continue
		}
		simAvg := sim / time.Duration(n)
		ovAvg := overhead / time.Duration(n)
		r.Add(tier(cached), simAvg.Round(time.Millisecond).String(),
			(simAvg + ovAvg).Round(time.Millisecond).String(),
			ovAvg.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.4f%%", 100*float64(ovAvg)/float64(simAvg)))
		if cached {
			r.Note("synopsis footprint after %d queries: %.1f KB (%d snippets)",
				train+n, float64(v.FootprintBytes())/1024, v.SnippetCount())
		}
	}
	r.Note("paper: ~10 ms overhead, 0.48%% of cached and 0.02%% of SSD latency; expect sub-millisecond absolute overhead here (smaller synopsis), with the same cached > SSD ordering of relative overhead")
	return r, nil
}
