package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/mathx"
)

func init() { register("figure5", Figure5ConfidenceIntervals) }

// Figure5ConfidenceIntervals reproduces Figure 5: Verdict is configured for
// 95%-confidence error bounds; across many (bound, actual-error) pairs
// collected at every online-aggregation step, the actual errors are
// bucketed by bound size and their 5th/50th/95th percentiles reported. The
// bounds are probabilistically correct when the 95th percentile stays at or
// below the bound (ratio ≤ 1).
func Figure5ConfidenceIntervals(o Options) (*Report, error) {
	r := &Report{
		ID:    "figure5",
		Title: "Error-bound calibration at 95% confidence",
		Columns: []string{"Bound bucket", "Pairs", "p5(actual/bound)",
			"median(actual/bound)", "p95(actual/bound)", "Coverage"},
	}
	f, err := buildFixture(o, table4Config{dataset: "customer1", cached: true})
	if err != nil {
		return nil, err
	}
	_, _, train, test := sizing(o)
	curves, _, err := runComparison(f, core.Config{Confidence: 0.95}, train, test)
	if err != nil {
		return nil, err
	}

	// Collect (improved bound, improved actual) pairs at three runtimes per
	// query (first, middle and final batch): the spread of bound sizes
	// plays the role of the paper's 1%–32% buckets. One pair per
	// (query, runtime) — successive batches of the same query share the
	// same model error, so pooling every batch would count one tail event
	// many times over.
	type pair struct{ bound, actual float64 }
	var pairs []pair
	for _, pts := range curves {
		if len(pts) == 0 {
			continue
		}
		picks := []int{0, len(pts) / 2, len(pts) - 1}
		seen := -1
		for _, bi := range picks {
			if bi == seen {
				continue
			}
			seen = bi
			p := pts[bi]
			if p.impBound > 0 {
				pairs = append(pairs, pair{p.impBound, p.impErr})
			}
		}
	}
	if len(pairs) == 0 {
		r.Note("no pairs collected")
		return r, nil
	}
	// Log-spaced buckets over the observed bound range.
	buckets := []struct {
		lo, hi float64
		ratios []float64
	}{
		{0, 0.005, nil}, {0.005, 0.01, nil}, {0.01, 0.02, nil},
		{0.02, 0.04, nil}, {0.04, 0.08, nil}, {0.08, 0.16, nil}, {0.16, math.Inf(1), nil},
	}
	for _, p := range pairs {
		for bi := range buckets {
			if p.bound >= buckets[bi].lo && p.bound < buckets[bi].hi {
				buckets[bi].ratios = append(buckets[bi].ratios, p.actual/p.bound)
				break
			}
		}
	}
	var inBound, total int
	for _, b := range buckets {
		if len(b.ratios) < 8 {
			continue
		}
		cov := 0
		for _, ratio := range b.ratios {
			if ratio <= 1 {
				cov++
			}
		}
		inBound += cov
		total += len(b.ratios)
		r.Add(fmtPct(b.lo)+"–"+fmtPct(b.hi), itoa(len(b.ratios)),
			fmtF(mathx.Quantile(b.ratios, 0.05)),
			fmtF(mathx.Quantile(b.ratios, 0.50)),
			fmtF(mathx.Quantile(b.ratios, 0.95)),
			fmtPct(float64(cov)/float64(len(b.ratios))))
	}
	if total > 0 {
		r.Note("overall coverage: %s of %d pairs inside the 95%%-confidence bound", fmtPct(float64(inBound)/float64(total)), total)
	}
	r.Note("expected shape (paper Fig. 5): coverage ≈ 95%% — the 95th percentile of actual errors at or below the bound in each bucket")
	return r, nil
}
