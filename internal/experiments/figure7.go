package experiments

import (
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/workload"
)

func init() { register("figure7", Figure7ParameterLearning) }

// Figure7ParameterLearning reproduces Appendix A.2's Figure 7: datasets are
// generated from *known* correlation parameters; Verdict estimates the
// parameters from 20, 50 and 100 past snippets; estimated values should
// track the true values, more closely with more snippets.
func Figure7ParameterLearning(o Options) (*Report, error) {
	r := &Report{
		ID:      "figure7",
		Title:   "Correlation parameter learning accuracy",
		Columns: []string{"True ℓ", "Past snippets", "Estimated ℓ", "Ratio"},
	}
	trueElls := []float64{5, 10, 20, 40}
	counts := []int{20, 50, 100}
	if o.Scale == Small {
		trueElls = []float64{10, 20}
		counts = []int{20, 50}
	}
	for _, ell := range trueElls {
		tb, _, err := workload.GeneratePlanted1D(workload.Planted1DSpec{
			Rows: 8000, Ell: ell, Sigma2: 9, NoiseStd: 0.05,
			Domain: 100, Seed: o.Seed + int64(ell*7),
		})
		if err != nil {
			return nil, err
		}
		xcol, _ := tb.Schema().Lookup("x")
		for _, n := range counts {
			rng := randx.New(o.Seed + int64(ell) + int64(n))
			v := core.New(tb, core.Config{LearnCap: n, MultiStarts: 2})
			for i := 0; i < n; i++ {
				lo := rng.Uniform(0, 94)
				hi := lo + rng.Uniform(2, 6)
				exact := exactAvgOn(tb, lo, hi)
				v.Record(avgSnippetOn(tb, lo, hi),
					query.ScalarEstimate{Value: exact + rng.Normal(0, 0.05), StdErr: 0.05})
			}
			if err := v.Train(); err != nil {
				return nil, err
			}
			p, ok := v.Params(query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"})
			if !ok {
				continue
			}
			est := p.Ells[xcol]
			r.Add(fmtF(ell), itoa(n), fmtF(est), fmtF(est/ell))
		}
	}
	r.Note("expected shape (paper Fig. 7): estimated parameters consistent with true values (ratio near 1), tighter with more past snippets")
	return r, nil
}
