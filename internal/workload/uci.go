package workload

import (
	"math"

	"repro/internal/randx"
	"repro/internal/storage"
)

// UCI-style datasets for Appendix E (Figure 13): the paper analyzes 16
// well-known UCI datasets, sorting each numeric column j and measuring the
// correlation between *adjacent* values of every other column i — the
// normalized inter-tuple covariance whose prevalence motivates Verdict's
// kernel. The datasets themselves are not vendored here; instead we
// synthesize 16 small tables with the mixture of smooth dependencies,
// monotone couplings and pure-noise columns typical of those datasets
// (DESIGN.md §2), and run the *identical analysis code*.

// UCIDatasetNames lists the 16 dataset stand-ins, named after Appendix E's
// list.
var UCIDatasetNames = []string{
	"cancer", "glass", "haberman", "ionosphere", "iris",
	"mammographic-masses", "optdigits", "parkinsons", "pima-indians-diabetes",
	"segmentation", "spambase", "steel-plates-faults", "transfusion",
	"vehicle", "vertebral-column", "yeast",
}

// GenerateUCILike builds one synthetic stand-in dataset: 4–8 numeric
// columns and a few hundred rows, where some column pairs are smoothly
// coupled, some linearly coupled with noise, and some independent.
func GenerateUCILike(name string, idx int, seed int64) (*storage.Table, error) {
	rng := randx.New(seed + int64(idx)*977)
	nCols := 4 + rng.Intn(5)
	rows := 200 + rng.Intn(400)

	cols := make([]storage.ColumnDef, nCols)
	for i := range cols {
		cols[i] = storage.ColumnDef{
			Name: "a" + string(rune('0'+i)), Kind: storage.Numeric, Role: storage.Dimension,
		}
	}
	schema, err := storage.NewSchema(cols)
	if err != nil {
		return nil, err
	}
	t := storage.NewTable(name, schema)

	// Column 0 is a latent driver; other columns couple to it (or to each
	// other) with dataset-specific strengths.
	fields := make([]*randx.SmoothFieldAt, nCols)
	couple := make([]float64, nCols)
	for i := range fields {
		fields[i] = rng.Fork(int64(i)).NewSmoothField(2.0, 1.0, 0)
		// Coupling strength in [0,1): some columns strongly coupled, some
		// nearly independent — that spread is what Figure 13 shows.
		couple[i] = rng.Float64() * rng.Float64() * 1.4
		if couple[i] > 1 {
			couple[i] = 1
		}
	}
	row := make([]storage.Value, nCols)
	for r := 0; r < rows; r++ {
		z := rng.Uniform(0, 10)
		for i := 0; i < nCols; i++ {
			v := couple[i]*fields[i].At(z) + (1-couple[i])*rng.Normal(0, 1)
			row[i] = storage.Num(v)
		}
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AdjacentCorrelation computes the Appendix E statistic for one ordered
// column pair (i sorted by j): the Pearson correlation between consecutive
// values of column i when rows are ordered by column j.
func AdjacentCorrelation(t *storage.Table, i, j int) float64 {
	n := t.Rows()
	if n < 3 {
		return 0
	}
	// Sort row indices by column j.
	order := make([]int, n)
	for k := range order {
		order[k] = k
	}
	colJ := t.NumericCol(j)
	sortByKey(order, colJ)
	colI := t.NumericCol(i)
	xs := make([]float64, n-1)
	ys := make([]float64, n-1)
	for k := 0; k+1 < n; k++ {
		xs[k] = colI[order[k]]
		ys[k] = colI[order[k+1]]
	}
	return pearson(xs, ys)
}

// AllAdjacentCorrelations returns the statistic for every ordered pair
// (i≠j) of numeric columns.
func AllAdjacentCorrelations(t *storage.Table) []float64 {
	var out []float64
	numeric := []int{}
	for _, c := range t.Schema().DimensionCols() {
		if t.Schema().Col(c).Kind == storage.Numeric {
			numeric = append(numeric, c)
		}
	}
	for _, i := range numeric {
		for _, j := range numeric {
			if i == j {
				continue
			}
			out = append(out, AdjacentCorrelation(t, i, j))
		}
	}
	return out
}

func sortByKey(idx []int, key []float64) {
	// Simple bottom-up merge sort: stable, allocation-bounded, no
	// sort.Slice interface overhead in this hot analysis loop.
	n := len(idx)
	buf := make([]int, n)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			merge(idx, buf, key, lo, mid, hi)
		}
		copy(idx, buf[:n])
	}
}

func merge(idx, buf []int, key []float64, lo, mid, hi int) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		switch {
		case i < mid && (j >= hi || key[idx[i]] <= key[idx[j]]):
			buf[k] = idx[i]
			i++
		default:
			buf[k] = idx[j]
			j++
		}
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
