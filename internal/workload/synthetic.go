// Package workload generates the datasets and query traces the paper's
// evaluation section runs on: the controlled synthetic tables and query
// mixes of §8.6 (workload diversity, data distributions, learning
// behaviour), a TPC-H-like schema with the 22 query templates classified
// exactly as Table 3 does, a Customer1-like timestamped trace calibrated to
// the paper's published statistics, and the UCI-style datasets Appendix E
// analyzes for inter-tuple covariance prevalence. Everything is
// deterministic given a seed; see DESIGN.md §2 for the documented
// substitutions of proprietary inputs.
package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/randx"
	"repro/internal/storage"
)

// Distribution selects the marginal distribution of generated attribute
// values (§8.6's uniform / Gaussian / skewed sweep).
type Distribution uint8

// Supported distributions.
const (
	Uniform Distribution = iota
	Gaussian
	Skewed // log-normal
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	default:
		return "skewed"
	}
}

// SyntheticSpec configures the §8.6 table generator.
type SyntheticSpec struct {
	// Rows is the table cardinality (the paper uses 5M; tests use less).
	Rows int
	// NumericCols and CategoricalCols partition the dimension columns
	// (the paper: 50 columns, 10% categorical → 45 numeric, 5 categorical).
	NumericCols, CategoricalCols int
	// CategoricalCard is the domain size of categorical columns (paper:
	// integers 0..100).
	CategoricalCard int
	// Dist selects the numeric dimension marginal distribution.
	Dist Distribution
	// SmoothEll is the planted correlation length-scale of the measure's
	// dependence on each numeric dimension (domain is [0,10] as in §8.6).
	SmoothEll float64
	// NoiseStd is the i.i.d. noise on the measure.
	NoiseStd float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultSyntheticSpec mirrors §8.6 at reduced scale.
func DefaultSyntheticSpec() SyntheticSpec {
	return SyntheticSpec{
		Rows:            100000,
		NumericCols:     45,
		CategoricalCols: 5,
		CategoricalCard: 100,
		Dist:            Uniform,
		SmoothEll:       3.0,
		NoiseStd:        0.5,
		Seed:            1,
	}
}

// Synthetic bundles a generated table with the ground-truth structure that
// produced it, so experiments can relate learned parameters to planted ones.
type Synthetic struct {
	Table *storage.Table
	Spec  SyntheticSpec
	// Fields holds the per-numeric-column smooth components of the measure.
	Fields []*randx.SmoothFieldAt
	// Weights holds each component's weight.
	Weights []float64
}

// NumericColName / CategoricalColName give the generated column names.
func NumericColName(i int) string     { return "n" + strconv.Itoa(i) }
func CategoricalColName(i int) string { return "c" + strconv.Itoa(i) }

// MeasureColName is the generated measure column.
const MeasureColName = "m"

// domainLo/domainHi bound numeric dimension values (§8.6: reals in [0,10]).
const domainLo, domainHi = 0.0, 10.0

// GenerateSynthetic builds the §8.6 table: dimension columns drawn from the
// chosen distribution, one measure column equal to a weighted sum of smooth
// functions of the first few numeric dimensions plus noise. The smooth
// dependence is what gives the dataset non-zero inter-tuple covariance for
// Verdict to exploit; its length-scale is known, which the parameter-
// learning experiments (Figure 7) rely on.
func GenerateSynthetic(spec SyntheticSpec) (*Synthetic, error) {
	if spec.Rows <= 0 || spec.NumericCols < 1 {
		return nil, fmt.Errorf("workload: bad synthetic spec %+v", spec)
	}
	cols := make([]storage.ColumnDef, 0, spec.NumericCols+spec.CategoricalCols+1)
	for i := 0; i < spec.NumericCols; i++ {
		cols = append(cols, storage.ColumnDef{
			Name: NumericColName(i), Kind: storage.Numeric, Role: storage.Dimension,
			Min: domainLo, Max: domainHi,
		})
	}
	for i := 0; i < spec.CategoricalCols; i++ {
		cols = append(cols, storage.ColumnDef{
			Name: CategoricalColName(i), Kind: storage.Categorical, Role: storage.Dimension,
		})
	}
	cols = append(cols, storage.ColumnDef{Name: MeasureColName, Kind: storage.Numeric, Role: storage.Measure})
	schema, err := storage.NewSchema(cols)
	if err != nil {
		return nil, err
	}
	t := storage.NewTable("synthetic", schema)

	rng := randx.New(spec.Seed)
	// The measure depends smoothly on the first dependCols numeric dims.
	dependCols := spec.NumericCols
	if dependCols > 8 {
		dependCols = 8
	}
	fields := make([]*randx.SmoothFieldAt, dependCols)
	weights := make([]float64, dependCols)
	for i := range fields {
		fields[i] = rng.Fork(int64(1000+i)).NewSmoothField(spec.SmoothEll, 1.0, 0)
		weights[i] = 1.0 / float64(dependCols)
	}

	valRng := rng.Fork(1)
	catRng := rng.Fork(2)
	noiseRng := rng.Fork(3)
	row := make([]storage.Value, len(cols))
	for r := 0; r < spec.Rows; r++ {
		measure := 5.0
		for i := 0; i < spec.NumericCols; i++ {
			v := drawDim(valRng, spec.Dist)
			row[i] = storage.Num(v)
			if i < dependCols {
				measure += weights[i] * fields[i].At(v)
			}
		}
		for i := 0; i < spec.CategoricalCols; i++ {
			row[spec.NumericCols+i] = storage.Str(strconv.Itoa(catRng.Intn(spec.CategoricalCard)))
		}
		measure += noiseRng.Normal(0, spec.NoiseStd)
		row[len(cols)-1] = storage.Num(measure)
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return &Synthetic{Table: t, Spec: spec, Fields: fields, Weights: weights}, nil
}

// drawDim samples one dimension value in [0,10] under the distribution.
func drawDim(rng *randx.Source, d Distribution) float64 {
	switch d {
	case Gaussian:
		v := rng.Normal(5, 1.7)
		if v < domainLo {
			v = domainLo
		}
		if v > domainHi {
			v = domainHi
		}
		return v
	case Skewed:
		v := rng.LogNormal(0.8, 0.8)
		if v > domainHi {
			v = domainHi
		}
		return v
	default:
		return rng.Uniform(domainLo, domainHi)
	}
}

// QuerySpec configures the §8.6 query generator.
type QuerySpec struct {
	// FreqColRatio is the fraction of columns that are "frequently
	// accessed" (the x-axis of Figure 6(a): 4–40%).
	FreqColRatio float64
	// Decay is the geometric decay of the remaining columns' access
	// probability (paper: halving → 0.5).
	Decay float64
	// MaxPreds bounds predicates per query (paper: most Customer1 queries
	// have <5 distinct selection predicates).
	MaxPreds int
	// AvgSelectivity is the expected fraction of a column's values covered
	// by one range predicate. Ranges are quantile-based, which keeps query
	// hardness comparable across data distributions (the point of §8.6's
	// distribution sweep is the model, not accidental selectivity shifts).
	AvgSelectivity float64
	// CountRatio is the fraction of COUNT(*) queries; the rest are AVG(m).
	CountRatio float64
	// Seed drives generation.
	Seed int64
}

// DefaultQuerySpec mirrors §8.6 with Figure 6(a)'s middle setting.
func DefaultQuerySpec() QuerySpec {
	return QuerySpec{
		FreqColRatio:   0.2,
		Decay:          0.5,
		MaxPreds:       4,
		AvgSelectivity: 0.2,
		CountRatio:     0.3,
		Seed:           1,
	}
}

// SyntheticQueries generates n SQL queries over a synthetic table following
// the power-law column-access pattern of §8.6.
func SyntheticQueries(syn *Synthetic, spec QuerySpec, n int) []string {
	rng := randx.New(spec.Seed)
	spec = normalizeQuerySpec(spec)
	totalCols := syn.Spec.NumericCols + syn.Spec.CategoricalCols
	head := int(float64(totalCols) * spec.FreqColRatio)
	if head < 1 {
		head = 1
	}
	// Sorted copies of numeric columns, built lazily: quantile-based range
	// predicates need them.
	sorted := make([][]float64, syn.Spec.NumericCols)
	sortedCol := func(col int) []float64 {
		if sorted[col] == nil {
			src := syn.Table.NumericCol(col)
			cp := append([]float64(nil), src...)
			sortFloats(cp)
			sorted[col] = cp
		}
		return sorted[col]
	}
	out := make([]string, 0, n)
	for q := 0; q < n; q++ {
		nPreds := 1 + rng.Intn(spec.MaxPreds)
		used := map[int]bool{}
		var preds []string
		for len(preds) < nPreds {
			col := rng.HeadTailIndex(totalCols, head, spec.Decay)
			if used[col] {
				continue
			}
			used[col] = true
			if col < syn.Spec.NumericCols {
				// Quantile-based range: cover a target fraction of the
				// column's values regardless of its marginal distribution.
				sel := rng.Exponential(1 / spec.AvgSelectivity)
				if sel < 0.03 {
					sel = 0.03
				}
				if sel > 0.4 {
					sel = 0.4
				}
				vals := sortedCol(col)
				start := rng.Uniform(0, 1-sel)
				loIdx := int(start * float64(len(vals)-1))
				hiIdx := int((start + sel) * float64(len(vals)-1))
				preds = append(preds, fmt.Sprintf("%s BETWEEN %.3f AND %.3f",
					NumericColName(col), vals[loIdx], vals[hiIdx]))
			} else {
				cat := col - syn.Spec.NumericCols
				k := 1 + rng.Intn(3)
				vals := make([]string, 0, k)
				seen := map[int]bool{}
				for len(vals) < k {
					v := rng.Intn(syn.Spec.CategoricalCard)
					if seen[v] {
						continue
					}
					seen[v] = true
					vals = append(vals, "'"+strconv.Itoa(v)+"'")
				}
				preds = append(preds, fmt.Sprintf("%s IN (%s)",
					CategoricalColName(cat), strings.Join(vals, ", ")))
			}
		}
		agg := "AVG(" + MeasureColName + ")"
		if rng.Bool(spec.CountRatio) {
			agg = "COUNT(*)"
		}
		out = append(out, fmt.Sprintf("SELECT %s FROM synthetic WHERE %s",
			agg, strings.Join(preds, " AND ")))
	}
	return out
}

func normalizeQuerySpec(s QuerySpec) QuerySpec {
	if s.Decay <= 0 || s.Decay >= 1 {
		s.Decay = 0.5
	}
	if s.MaxPreds <= 0 {
		s.MaxPreds = 4
	}
	if s.AvgSelectivity <= 0 {
		s.AvgSelectivity = 0.2
	}
	if s.FreqColRatio <= 0 {
		s.FreqColRatio = 0.2
	}
	return s
}

// sortFloats is a local ascending sort (keeps the package stdlib-lean).
func sortFloats(xs []float64) {
	// Heapsort: in-place, O(n log n) worst case, no allocation.
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(xs, i, n)
	}
	for end := n - 1; end > 0; end-- {
		xs[0], xs[end] = xs[end], xs[0]
		siftDown(xs, 0, end)
	}
}

func siftDown(xs []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && xs[child+1] > xs[child] {
			child++
		}
		if xs[root] >= xs[child] {
			return
		}
		xs[root], xs[child] = xs[child], xs[root]
		root = child
	}
}

// Planted1DSpec builds a table whose measure is exactly one smooth field of
// a single dimension — the setting of the parameter-learning accuracy
// (Figure 7) and model-validation (Figure 9) experiments, where the true
// correlation parameters must be known.
type Planted1DSpec struct {
	Rows     int
	Ell      float64 // true correlation parameter (paper kernel convention)
	Sigma2   float64 // field variance
	Mean     float64 // field mean level
	NoiseStd float64
	Domain   float64 // dimension domain [0, Domain]
	Seed     int64
}

// GeneratePlanted1D builds the planted-parameter table; the dimension is
// "x", the measure "y".
func GeneratePlanted1D(spec Planted1DSpec) (*storage.Table, *randx.SmoothFieldAt, error) {
	if spec.Rows <= 0 || spec.Ell <= 0 || spec.Domain <= 0 {
		return nil, nil, fmt.Errorf("workload: bad planted spec %+v", spec)
	}
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: spec.Domain},
		{Name: "y", Kind: storage.Numeric, Role: storage.Measure},
	})
	t := storage.NewTable("planted", schema)
	rng := randx.New(spec.Seed)
	field := rng.NewSmoothField(spec.Ell, spec.Sigma2, spec.Mean)
	for r := 0; r < spec.Rows; r++ {
		x := rng.Uniform(0, spec.Domain)
		y := field.At(x) + rng.Normal(0, spec.NoiseStd)
		if err := t.AppendRow([]storage.Value{storage.Num(x), storage.Num(y)}); err != nil {
			return nil, nil, err
		}
	}
	return t, field, nil
}

// AppendedTableSpec drives the Appendix D experiment: appended tuples whose
// attribute values "gradually diverge" from the original table.
type AppendedTableSpec struct {
	Rows int
	// DriftMean shifts the appended measure distribution uniformly.
	DriftMean float64
	// DriftSpread is the standard deviation of a *region-dependent* smooth
	// drift component over the dimension — the part that makes Lemma 3's
	// η² matter (a purely uniform shift is fully absorbed by μ_k).
	DriftSpread float64
	// DriftEll is the region-drift length-scale (default 20).
	DriftEll float64
	// DriftStd widens the per-tuple noise.
	DriftStd float64
	Seed     int64
}

// GenerateAppended builds a batch of appended tuples compatible with a
// Planted1D table's schema, drifted per the spec.
func GenerateAppended(base *storage.Table, field *randx.SmoothFieldAt, spec AppendedTableSpec) (*storage.Table, error) {
	schema := base.Schema()
	t := storage.NewTable("appended", schema)
	rng := randx.New(spec.Seed)
	xcol, ok := schema.Lookup("x")
	if !ok {
		return nil, fmt.Errorf("workload: appended spec requires planted schema")
	}
	ell := spec.DriftEll
	if ell <= 0 {
		ell = 20
	}
	var regionDrift *randx.SmoothFieldAt
	if spec.DriftSpread > 0 {
		regionDrift = rng.NewSmoothField(ell, spec.DriftSpread*spec.DriftSpread, 0)
	}
	lo, hi := base.Domain(xcol)
	for r := 0; r < spec.Rows; r++ {
		x := rng.Uniform(lo, hi)
		y := field.At(x) + spec.DriftMean + rng.Normal(0, 1+spec.DriftStd)
		if regionDrift != nil {
			y += regionDrift.At(x)
		}
		if err := t.AppendRow([]storage.Value{storage.Num(x), storage.Num(y)}); err != nil {
			return nil, err
		}
	}
	return t, nil
}
