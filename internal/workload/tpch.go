package workload

import (
	"fmt"
	"strings"

	"repro/internal/randx"
	"repro/internal/storage"
)

// TPC-H-like workload. The paper runs TPC-H at SF=100 and classifies its 22
// query types: 21 contain aggregates (2 of them MIN/MAX) and 14 are
// supported (Table 3). This file generates a scaled-down *denormalized*
// lineitem-centric relation — the paper itself notes its discussion "is
// based on a denormalized table" (§2.2) — plus 22 query templates with the
// same classification profile: 21 aggregate templates, 2 using MIN/MAX, 5
// rejected for textual filters / disjunctions / subqueries, 14 supported
// and executable.

// TPCHTableName is the denormalized relation name.
const TPCHTableName = "tpch"

// Date dimension: days since 1992-01-01; TPC-H spans ~7 years.
const tpchDateMax = 2555

// TPCHSchema returns the denormalized schema.
func TPCHSchema() *storage.Schema {
	return storage.MustSchema([]storage.ColumnDef{
		// Numeric dimensions (usable in range predicates and aggregates).
		{Name: "l_quantity", Kind: storage.Numeric, Role: storage.Dimension, Min: 1, Max: 50},
		{Name: "l_discount", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 0.1},
		{Name: "l_shipdate", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: tpchDateMax},
		{Name: "o_orderdate", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: tpchDateMax},
		// Categorical dimensions.
		{Name: "l_returnflag", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "l_linestatus", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "l_shipmode", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "c_mktsegment", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "c_nation", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "s_nation", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "p_brand", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "p_container", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "o_orderpriority", Kind: storage.Categorical, Role: storage.Dimension},
		// Measures.
		{Name: "l_extendedprice", Kind: storage.Numeric, Role: storage.Measure},
		{Name: "l_tax", Kind: storage.Numeric, Role: storage.Measure},
	})
}

var (
	returnFlags   = []string{"A", "N", "R"}
	lineStatuses  = []string{"O", "F"}
	shipModes     = []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	mktSegments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	nations       = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "CHINA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "ROMANIA", "RUSSIA", "SAUDI ARABIA", "UNITED KINGDOM", "UNITED STATES", "VIETNAM"}
	brands        = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22", "Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#41", "Brand#42", "Brand#43", "Brand#51", "Brand#52", "Brand#53"}
	containers    = []string{"SM CASE", "SM BOX", "SM PACK", "MED BAG", "MED BOX", "MED PKG", "LG CASE", "LG BOX", "LG PACK", "JUMBO JAR"}
	orderPriority = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
)

// GenerateTPCH builds the denormalized relation with `rows` line items.
// Prices follow TPC-H's quantity-linked structure (extendedprice =
// quantity × unit price) with seasonal drift over ship date, giving the
// dataset the inter-tuple covariance Verdict exploits.
func GenerateTPCH(rows int, seed int64) (*storage.Table, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("workload: rows=%d", rows)
	}
	t := storage.NewTable(TPCHTableName, TPCHSchema())
	rng := randx.New(seed)
	season := rng.NewSmoothField(400, 0.02, 0) // slow price drift over days
	row := make([]storage.Value, t.Schema().Len())
	for r := 0; r < rows; r++ {
		qty := float64(1 + rng.Intn(50))
		disc := float64(rng.Intn(11)) / 100
		ship := rng.Uniform(0, tpchDateMax)
		order := ship - rng.Uniform(1, 121)
		if order < 0 {
			order = 0
		}
		unit := 900 + 100*rng.LogNormal(0, 0.3)
		unit *= 1 + season.At(ship)
		price := qty * unit
		tax := price * rng.Uniform(0, 0.08)

		row[0] = storage.Num(qty)
		row[1] = storage.Num(disc)
		row[2] = storage.Num(ship)
		row[3] = storage.Num(order)
		row[4] = storage.Str(returnFlags[rng.Intn(len(returnFlags))])
		row[5] = storage.Str(lineStatuses[rng.Intn(len(lineStatuses))])
		row[6] = storage.Str(shipModes[rng.Intn(len(shipModes))])
		row[7] = storage.Str(mktSegments[rng.Intn(len(mktSegments))])
		row[8] = storage.Str(nations[rng.Intn(len(nations))])
		row[9] = storage.Str(nations[rng.Intn(len(nations))])
		row[10] = storage.Str(brands[rng.Intn(len(brands))])
		row[11] = storage.Str(containers[rng.Intn(len(containers))])
		row[12] = storage.Str(orderPriority[rng.Intn(len(orderPriority))])
		row[13] = storage.Num(price)
		row[14] = storage.Num(tax)
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// TPCHTemplate is one of the 22 query types with its Table 3 metadata.
type TPCHTemplate struct {
	ID  int    // TPC-H query number analog (1..22)
	SQL string // template with %d / %s placeholders already filled per Instantiate
	// HasAggregate / Supported encode the paper's classification.
	HasAggregate bool
	Supported    bool
	// Reason summarizes why an unsupported query is rejected.
	Reason string
}

// TPCHTemplates returns the 22 templates. Fourteen are supported and
// executable on the denormalized relation; two use MIN/MAX; five carry the
// textual filters, disjunctions or subqueries the paper cites; one (the
// Q22-analog) projects without aggregation so that exactly 21 of 22 carry
// aggregates, matching Table 3's TPC-H row.
func TPCHTemplates() []TPCHTemplate {
	q := func(id int, sql string, agg, ok bool, reason string) TPCHTemplate {
		return TPCHTemplate{ID: id, SQL: sql, HasAggregate: agg, Supported: ok, Reason: reason}
	}
	return []TPCHTemplate{
		// Q1: pricing summary report.
		q(1, `SELECT l_returnflag, l_linestatus, SUM(l_extendedprice), AVG(l_extendedprice), COUNT(*) FROM tpch WHERE l_shipdate <= %SHIP% GROUP BY l_returnflag, l_linestatus`, true, true, ""),
		// Q2: minimum-cost supplier — MIN plus a correlated subquery.
		q(2, `SELECT MIN(l_extendedprice) FROM tpch WHERE p_brand = '%BRAND%' AND l_extendedprice < (SELECT AVG(l_extendedprice) FROM tpch)`, true, false, "MIN aggregate; subquery"),
		// Q3: shipping priority.
		q(3, `SELECT SUM(l_extendedprice * (1 - l_discount)) FROM tpch WHERE c_mktsegment = '%SEG%' AND o_orderdate < %ORDER% AND l_shipdate > %SHIP%`, true, true, ""),
		// Q4: order priority checking.
		q(4, `SELECT o_orderpriority, COUNT(*) FROM tpch WHERE o_orderdate BETWEEN %ORDER% AND %ORDER2% GROUP BY o_orderpriority`, true, true, ""),
		// Q5: local supplier volume.
		q(5, `SELECT s_nation, SUM(l_extendedprice * (1 - l_discount)) FROM tpch WHERE c_nation = '%NATION%' AND o_orderdate BETWEEN %ORDER% AND %ORDER2% GROUP BY s_nation`, true, true, ""),
		// Q6: forecasting revenue change.
		q(6, `SELECT SUM(l_extendedprice * l_discount) FROM tpch WHERE l_shipdate BETWEEN %SHIP% AND %SHIP2% AND l_discount BETWEEN %DISC% AND %DISC2% AND l_quantity < %QTY%`, true, true, ""),
		// Q7: volume shipping.
		q(7, `SELECT s_nation, SUM(l_extendedprice * (1 - l_discount)) FROM tpch WHERE s_nation IN ('%NATION%', '%NATION2%') AND c_nation IN ('%NATION%', '%NATION2%') AND l_shipdate BETWEEN %SHIP% AND %SHIP2% GROUP BY s_nation`, true, true, ""),
		// Q8: national market share.
		q(8, `SELECT AVG(l_extendedprice * (1 - l_discount)) FROM tpch WHERE c_nation = '%NATION%' AND o_orderdate BETWEEN %ORDER% AND %ORDER2%`, true, true, ""),
		// Q9: product type profit — textual filter on part name.
		q(9, `SELECT s_nation, SUM(l_extendedprice * (1 - l_discount)) FROM tpch WHERE p_brand LIKE '%green%' GROUP BY s_nation`, true, false, "textual filter (LIKE)"),
		// Q10: returned item reporting.
		q(10, `SELECT c_nation, SUM(l_extendedprice * (1 - l_discount)) FROM tpch WHERE l_returnflag = 'R' AND o_orderdate BETWEEN %ORDER% AND %ORDER2% GROUP BY c_nation`, true, true, ""),
		// Q11: important stock identification — HAVING with a subquery.
		q(11, `SELECT p_brand, SUM(l_extendedprice) FROM tpch GROUP BY p_brand HAVING SUM(l_extendedprice) > (SELECT SUM(l_extendedprice) FROM tpch)`, true, false, "subquery in HAVING"),
		// Q12: shipping modes and order priority.
		q(12, `SELECT l_shipmode, COUNT(*) FROM tpch WHERE l_shipmode IN ('%MODE%', '%MODE2%') AND l_shipdate BETWEEN %SHIP% AND %SHIP2% GROUP BY l_shipmode`, true, true, ""),
		// Q13: customer distribution — NOT LIKE textual filter.
		q(13, `SELECT c_nation, COUNT(*) FROM tpch WHERE o_orderpriority NOT LIKE '%special%' GROUP BY c_nation`, true, false, "textual filter (NOT LIKE)"),
		// Q14: promotion effect.
		q(14, `SELECT SUM(l_extendedprice * l_discount) FROM tpch WHERE l_shipdate BETWEEN %SHIP% AND %SHIP2% AND p_container = '%CONT%'`, true, true, ""),
		// Q15: top supplier — MAX aggregate.
		q(15, `SELECT MAX(l_extendedprice) FROM tpch WHERE l_shipdate BETWEEN %SHIP% AND %SHIP2%`, true, false, "MAX aggregate"),
		// Q16: parts/supplier relationship — disjunction over containers.
		q(16, `SELECT p_brand, COUNT(*) FROM tpch WHERE p_container = '%CONT%' OR p_container = '%CONT2%' GROUP BY p_brand`, true, false, "disjunction"),
		// Q17: small-quantity-order revenue.
		q(17, `SELECT AVG(l_extendedprice) FROM tpch WHERE p_brand = '%BRAND%' AND p_container = '%CONT%' AND l_quantity < %QTY%`, true, true, ""),
		// Q18: large volume customer.
		q(18, `SELECT c_nation, SUM(l_quantity) FROM tpch WHERE l_quantity > %QTY% GROUP BY c_nation`, true, true, ""),
		// Q19: discounted revenue — the classic deeply disjunctive query.
		q(19, `SELECT SUM(l_extendedprice * (1 - l_discount)) FROM tpch WHERE (p_brand = '%BRAND%' AND l_quantity < %QTY%) OR (p_brand = '%BRAND2%' AND l_quantity > %QTY%)`, true, false, "disjunction"),
		// Q20: potential part promotion.
		q(20, `SELECT AVG(l_quantity) FROM tpch WHERE s_nation = '%NATION%' AND l_shipdate BETWEEN %SHIP% AND %SHIP2%`, true, true, ""),
		// Q21: suppliers who kept orders waiting.
		q(21, `SELECT s_nation, COUNT(*) FROM tpch WHERE s_nation = '%NATION%' AND l_returnflag = 'A' AND o_orderdate < %ORDER% GROUP BY s_nation`, true, true, ""),
		// Q22: global sales opportunity — projection without aggregation
		// (the one TPC-H analog outside Table 3's aggregate-query count).
		q(22, `SELECT c_nation FROM tpch WHERE c_mktsegment = '%SEG%' LIMIT 100`, false, false, "no aggregate"),
	}
}

// InstantiateTPCH fills a template's placeholders with seeded random
// constants, producing a concrete SQL string (the "500 queries with TPC-H's
// workload generator" of §8.1).
func InstantiateTPCH(tpl TPCHTemplate, rng *randx.Source) string {
	ship := rng.Uniform(200, 1800)
	order := rng.Uniform(200, 1800)
	disc := 0.02 + float64(rng.Intn(5))/100
	repl := map[string]string{
		"%SHIP%":    fmt.Sprintf("%.0f", ship),
		"%SHIP2%":   fmt.Sprintf("%.0f", ship+rng.Uniform(30, 365)),
		"%ORDER%":   fmt.Sprintf("%.0f", order),
		"%ORDER2%":  fmt.Sprintf("%.0f", order+rng.Uniform(30, 365)),
		"%DISC%":    fmt.Sprintf("%.2f", disc),
		"%DISC2%":   fmt.Sprintf("%.2f", disc+0.02),
		"%QTY%":     fmt.Sprintf("%d", 10+rng.Intn(30)),
		"%SEG%":     mktSegments[rng.Intn(len(mktSegments))],
		"%NATION%":  nations[rng.Intn(len(nations))],
		"%NATION2%": nations[rng.Intn(len(nations))],
		"%MODE%":    shipModes[rng.Intn(len(shipModes))],
		"%MODE2%":   shipModes[rng.Intn(len(shipModes))],
		"%BRAND%":   brands[rng.Intn(len(brands))],
		"%BRAND2%":  brands[rng.Intn(len(brands))],
		"%CONT%":    containers[rng.Intn(len(containers))],
		"%CONT2%":   containers[rng.Intn(len(containers))],
	}
	sql := tpl.SQL
	for k, v := range repl {
		sql = strings.ReplaceAll(sql, k, v)
	}
	return sql
}

// TPCHWorkload generates n instantiated queries cycling over the supported
// templates (the runtime experiments of §8.3 run only supported queries;
// classification experiments use TPCHTemplates directly).
func TPCHWorkload(n int, seed int64) []string {
	rng := randx.New(seed)
	var supported []TPCHTemplate
	for _, tpl := range TPCHTemplates() {
		if tpl.Supported {
			supported = append(supported, tpl)
		}
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		tpl := supported[i%len(supported)]
		out = append(out, InstantiateTPCH(tpl, rng))
	}
	return out
}
