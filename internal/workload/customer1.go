package workload

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/randx"
	"repro/internal/storage"
)

// Customer1-like workload. The paper's Customer1 is a proprietary
// 15.5K-query trace from a large customer of an analytic-DBMS vendor, of
// which 3,342 are aggregate analytical queries and 73.7% (2,463) fall in
// Verdict's supported class. The raw trace and 536 GB dataset are not
// public; this generator reproduces the trace's published *shape* (DESIGN.md
// §2): timestamped aggregate queries dominated by COUNT(*), fewer than 5
// selection predicates each, power-law column access, time-range predicates
// on an event-date dimension, and a 73.7% supported fraction with the
// remainder rejected for disjunctions, textual filters and nested queries.

// Customer1TableName is the simulated fact table.
const Customer1TableName = "events"

// Customer1Schema returns the simulated warehouse fact-table schema.
func Customer1Schema() *storage.Schema {
	return storage.MustSchema([]storage.ColumnDef{
		{Name: "event_date", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 400},
		{Name: "hour", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 24},
		{Name: "latency_bucket", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 100},
		{Name: "account", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "product", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "channel", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "status", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "amount", Kind: storage.Numeric, Role: storage.Measure},
		{Name: "quantity", Kind: storage.Numeric, Role: storage.Measure},
	})
}

var (
	channels = []string{"web", "mobile", "api", "batch", "partner"}
	statuses = []string{"ok", "error", "retry"}
)

// GenerateCustomer1 builds the simulated fact table. The amount measure
// drifts smoothly over the date dimension (an additive squared-exponential
// field — inside Verdict's model class, as the paper's calibration results
// presume) with modest per-product offsets providing the categorical
// structure the Eq. 16 factors exercise.
func GenerateCustomer1(rows int, seed int64) (*storage.Table, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("workload: rows=%d", rows)
	}
	t := storage.NewTable(Customer1TableName, Customer1Schema())
	rng := randx.New(seed)
	trend := rng.NewSmoothField(80, 2.0, 0) // additive drift of amount over dates
	nAccounts, nProducts := 50, 20
	row := make([]storage.Value, t.Schema().Len())
	for r := 0; r < rows; r++ {
		date := rng.Uniform(0, 400)
		hour := rng.Uniform(0, 24)
		lat := rng.Exponential(0.08)
		if lat > 100 {
			lat = 100
		}
		product := rng.Intn(nProducts)
		amount := 10 + trend.At(date) + 0.03*float64(product) + rng.Normal(0, 1.2)
		if amount < 0.5 {
			amount = 0.5
		}
		qty := float64(1 + rng.Intn(20))
		row[0] = storage.Num(date)
		row[1] = storage.Num(hour)
		row[2] = storage.Num(lat)
		row[3] = storage.Str(fmt.Sprintf("acct%02d", rng.Intn(nAccounts)))
		row[4] = storage.Str(fmt.Sprintf("prod%02d", product))
		row[5] = storage.Str(channels[rng.Intn(len(channels))])
		row[6] = storage.Str(statuses[rng.Intn(len(statuses))])
		row[7] = storage.Num(amount)
		row[8] = storage.Num(qty)
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// TraceEntry is one timestamped query of the simulated trace.
type TraceEntry struct {
	At  time.Time
	SQL string
	// Supported/HasAggregate record the intended classification (the
	// checker must agree; tests verify).
	Supported    bool
	HasAggregate bool
}

// Customer1TraceSpec configures the trace generator.
type Customer1TraceSpec struct {
	// Queries is the number of aggregate analytical queries (paper: 3,342).
	Queries int
	// SupportedRatio is the supported fraction (paper: 0.737).
	SupportedRatio float64
	// CountRatio is the fraction of supported queries that are COUNT(*)
	// (the paper notes COUNT(*) dominated, making learning fast).
	CountRatio float64
	Seed       int64
}

// DefaultCustomer1TraceSpec mirrors the paper's published statistics.
func DefaultCustomer1TraceSpec() Customer1TraceSpec {
	return Customer1TraceSpec{
		Queries:        3342,
		SupportedRatio: 0.737,
		CountRatio:     0.6,
		Seed:           1,
	}
}

// GenerateCustomer1Trace produces the timestamped query trace. Queries are
// spread over 14 months (March 2011 – April 2012, as in §8.1) in arrival
// order.
func GenerateCustomer1Trace(spec Customer1TraceSpec) []TraceEntry {
	if spec.Queries <= 0 {
		spec = DefaultCustomer1TraceSpec()
	}
	rng := randx.New(spec.Seed)
	start := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	span := time.Date(2012, 4, 30, 0, 0, 0, 0, time.UTC).Sub(start)
	nSupported := int(float64(spec.Queries)*spec.SupportedRatio + 0.5)

	entries := make([]TraceEntry, 0, spec.Queries)
	for i := 0; i < spec.Queries; i++ {
		at := start.Add(time.Duration(float64(span) * float64(i) / float64(spec.Queries)))
		e := TraceEntry{At: at, HasAggregate: true}
		if i%spec.Queries < nSupported { // deterministic split, shuffled below
			e.Supported = true
			e.SQL = customer1SupportedQuery(rng, spec.CountRatio)
		} else {
			e.SQL = customer1UnsupportedQuery(rng)
		}
		entries = append(entries, e)
	}
	// Interleave supported/unsupported while keeping timestamps ordered.
	rng.Shuffle(len(entries), func(i, j int) {
		entries[i].SQL, entries[j].SQL = entries[j].SQL, entries[i].SQL
		entries[i].Supported, entries[j].Supported = entries[j].Supported, entries[i].Supported
	})
	return entries
}

// customer1SupportedQuery emits a supported aggregate query: a time-range
// predicate plus up to 3 further predicates chosen with power-law column
// access.
func customer1SupportedQuery(rng *randx.Source, countRatio float64) string {
	var preds []string
	lo := rng.Uniform(0, 360)
	preds = append(preds, fmt.Sprintf("event_date BETWEEN %.1f AND %.1f", lo, lo+rng.Uniform(7, 40)))
	extra := rng.Intn(3)
	for p := 0; p < extra; p++ {
		switch rng.PowerLawIndex(5, 0.5) {
		case 0:
			preds = append(preds, fmt.Sprintf("product = 'prod%02d'", rng.Intn(20)))
		case 1:
			preds = append(preds, fmt.Sprintf("channel = '%s'", channels[rng.Intn(len(channels))]))
		case 2:
			preds = append(preds, fmt.Sprintf("status = '%s'", statuses[rng.Intn(len(statuses))]))
		case 3:
			h := float64(rng.Intn(12))
			preds = append(preds, fmt.Sprintf("hour BETWEEN %.0f AND %.0f", h, h+rng.Uniform(2, 8)))
		default:
			preds = append(preds, fmt.Sprintf("account IN ('acct%02d', 'acct%02d')", rng.Intn(50), rng.Intn(50)))
		}
	}
	agg := "AVG(amount)"
	switch {
	case rng.Bool(countRatio):
		agg = "COUNT(*)"
	case rng.Bool(0.4):
		agg = "SUM(amount)"
	}
	group := ""
	if rng.Bool(0.25) {
		group = " GROUP BY channel"
		agg = "channel, " + agg
	}
	return fmt.Sprintf("SELECT %s FROM events WHERE %s%s", agg, strings.Join(preds, " AND "), group)
}

// customer1UnsupportedQuery emits an aggregate query outside the supported
// class, mixing the rejection causes the paper cites.
func customer1UnsupportedQuery(rng *randx.Source) string {
	switch rng.Intn(4) {
	case 0: // disjunction
		return fmt.Sprintf("SELECT COUNT(*) FROM events WHERE channel = '%s' OR channel = '%s'",
			channels[rng.Intn(len(channels))], channels[rng.Intn(len(channels))])
	case 1: // textual filter
		return "SELECT COUNT(*) FROM events WHERE account LIKE '%acct1%'"
	case 2: // nested query
		return "SELECT AVG(amount) FROM events WHERE quantity > (SELECT AVG(quantity) FROM events)"
	default: // MIN/MAX
		return fmt.Sprintf("SELECT MAX(amount) FROM events WHERE event_date > %.0f", rng.Uniform(0, 300))
	}
}
