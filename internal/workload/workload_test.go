package workload

import (
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

func TestGenerateSynthetic(t *testing.T) {
	spec := DefaultSyntheticSpec()
	spec.Rows = 2000
	spec.NumericCols = 10
	spec.CategoricalCols = 2
	syn, err := GenerateSynthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	tb := syn.Table
	if tb.Rows() != 2000 {
		t.Fatalf("rows=%d", tb.Rows())
	}
	if tb.Schema().Len() != 13 {
		t.Fatalf("cols=%d", tb.Schema().Len())
	}
	// Dimension values within [0,10].
	for _, col := range []int{0, 5, 9} {
		st := tb.Stats(col)
		if st.Min < 0 || st.Max > 10 {
			t.Fatalf("col %d out of domain: %+v", col, st)
		}
	}
	// The measure must correlate with its first driver dimension: compare
	// averages over two halves of the dimension's domain against the
	// planted field.
	mcol, _ := tb.Schema().Lookup(MeasureColName)
	if tb.Schema().Col(mcol).Role != storage.Measure {
		t.Fatal("measure role wrong")
	}
	if _, err := GenerateSynthetic(SyntheticSpec{}); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestSyntheticDistributions(t *testing.T) {
	for _, d := range []Distribution{Uniform, Gaussian, Skewed} {
		spec := DefaultSyntheticSpec()
		spec.Rows = 5000
		spec.NumericCols = 3
		spec.CategoricalCols = 0
		spec.Dist = d
		syn, err := GenerateSynthetic(spec)
		if err != nil {
			t.Fatal(err)
		}
		st := syn.Table.Stats(0)
		switch d {
		case Uniform:
			if math.Abs(st.Mean-5) > 0.3 {
				t.Fatalf("uniform mean=%v", st.Mean)
			}
		case Gaussian:
			if math.Abs(st.Mean-5) > 0.3 || st.Variance > 4 {
				t.Fatalf("gaussian stats=%+v", st)
			}
		case Skewed:
			// Log-normal: mean above median.
			if st.Mean < 2 || st.Mean > 5 {
				t.Fatalf("skewed mean=%v", st.Mean)
			}
		}
	}
}

func TestSyntheticQueriesParseAndClassify(t *testing.T) {
	spec := DefaultSyntheticSpec()
	spec.Rows = 500
	syn, err := GenerateSynthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	qs := SyntheticQueries(syn, DefaultQuerySpec(), 200)
	if len(qs) != 200 {
		t.Fatalf("queries=%d", len(qs))
	}
	for _, sql := range qs {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("generated query does not parse: %q: %v", sql, err)
		}
		sup := query.Check(stmt)
		if !sup.OK {
			t.Fatalf("generated query unsupported: %q: %v", sql, sup.Reasons)
		}
		// Predicates must bind to regions on the actual table.
		if _, err := query.BindRegion(stmt.Where, syn.Table); err != nil {
			t.Fatalf("bind failed for %q: %v", sql, err)
		}
	}
}

func TestSyntheticQueryColumnAccessBias(t *testing.T) {
	spec := DefaultSyntheticSpec()
	spec.Rows = 100
	syn, err := GenerateSynthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	qspec := DefaultQuerySpec()
	qspec.FreqColRatio = 0.1 // first 5 of 50 columns are hot
	qs := SyntheticQueries(syn, qspec, 400)
	hot, cold := 0, 0
	for _, sql := range qs {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		g, err := query.BindRegion(stmt.Where, syn.Table)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range g.ConstrainedCols() {
			if col < 5 {
				hot++
			} else {
				cold++
			}
		}
	}
	if hot <= cold {
		t.Fatalf("power-law access not biased: hot=%d cold=%d", hot, cold)
	}
}

func TestGeneratePlanted1D(t *testing.T) {
	tb, field, err := GeneratePlanted1D(Planted1DSpec{
		Rows: 3000, Ell: 15, Sigma2: 4, NoiseStd: 0.1, Domain: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3000 {
		t.Fatalf("rows=%d", tb.Rows())
	}
	// The stored measure must track the field closely (small noise).
	xcol, _ := tb.Schema().Lookup("x")
	ycol, _ := tb.Schema().Lookup("y")
	var maxDiff float64
	for r := 0; r < 100; r++ {
		d := math.Abs(tb.NumAt(r, ycol) - field.At(tb.NumAt(r, xcol)))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.6 {
		t.Fatalf("measure deviates from field: %v", maxDiff)
	}
	if _, _, err := GeneratePlanted1D(Planted1DSpec{}); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestGenerateAppendedDrifts(t *testing.T) {
	tb, field, err := GeneratePlanted1D(Planted1DSpec{
		Rows: 2000, Ell: 15, Sigma2: 4, NoiseStd: 0.1, Domain: 100, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := GenerateAppended(tb, field, AppendedTableSpec{Rows: 1000, DriftMean: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ycol, _ := tb.Schema().Lookup("y")
	if app.Stats(ycol).Mean < tb.Stats(ycol).Mean+3 {
		t.Fatalf("append did not drift: %v vs %v", app.Stats(ycol).Mean, tb.Stats(ycol).Mean)
	}
}

func TestTPCHGeneration(t *testing.T) {
	tb, err := GenerateTPCH(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3000 {
		t.Fatalf("rows=%d", tb.Rows())
	}
	qcol, _ := tb.Schema().Lookup("l_quantity")
	pcol, _ := tb.Schema().Lookup("l_extendedprice")
	qs, ps := tb.Stats(qcol), tb.Stats(pcol)
	if qs.Min < 1 || qs.Max > 50 {
		t.Fatalf("quantity stats=%+v", qs)
	}
	if ps.Mean <= 0 {
		t.Fatalf("price mean=%v", ps.Mean)
	}
	rcol, _ := tb.Schema().Lookup("l_returnflag")
	if tb.DictOf(rcol).Size() != 3 {
		t.Fatalf("returnflag cardinality=%d", tb.DictOf(rcol).Size())
	}
}

func TestTPCHTemplatesMatchTable3(t *testing.T) {
	// The checker's classification of the 22 templates must reproduce
	// Table 3's TPC-H row: 21 aggregate queries, 14 supported.
	tpls := TPCHTemplates()
	if len(tpls) != 22 {
		t.Fatalf("templates=%d", len(tpls))
	}
	rng := randx.New(7)
	agg, supported := 0, 0
	for _, tpl := range tpls {
		sql := InstantiateTPCH(tpl, rng)
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("Q%d does not parse: %q: %v", tpl.ID, sql, err)
		}
		sup := query.Check(stmt)
		if sup.HasAggregate != tpl.HasAggregate {
			t.Errorf("Q%d aggregate flag: checker=%v template=%v", tpl.ID, sup.HasAggregate, tpl.HasAggregate)
		}
		if sup.OK != tpl.Supported {
			t.Errorf("Q%d support: checker=%v template=%v (reasons=%v)", tpl.ID, sup.OK, tpl.Supported, sup.Reasons)
		}
		if sup.HasAggregate {
			agg++
		}
		if sup.OK {
			supported++
		}
	}
	if agg != 21 || supported != 14 {
		t.Fatalf("classification: aggregates=%d supported=%d, want 21/14", agg, supported)
	}
}

func TestTPCHSupportedTemplatesExecuteBind(t *testing.T) {
	tb, err := GenerateTPCH(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(8)
	for _, tpl := range TPCHTemplates() {
		if !tpl.Supported {
			continue
		}
		sql := InstantiateTPCH(tpl, rng)
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("Q%d parse: %v", tpl.ID, err)
		}
		if _, err := query.BindRegion(stmt.Where, tb); err != nil {
			t.Fatalf("Q%d bind: %v (%q)", tpl.ID, err, sql)
		}
		if _, err := query.Decompose(stmt, tb, nil, 0); err != nil {
			t.Fatalf("Q%d decompose: %v", tpl.ID, err)
		}
	}
}

func TestTPCHWorkloadOnlySupported(t *testing.T) {
	qs := TPCHWorkload(50, 3)
	if len(qs) != 50 {
		t.Fatalf("queries=%d", len(qs))
	}
	for _, sql := range qs {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if sup := query.Check(stmt); !sup.OK {
			t.Fatalf("unsupported in runtime workload: %q (%v)", sql, sup.Reasons)
		}
	}
}

func TestCustomer1Generation(t *testing.T) {
	tb, err := GenerateCustomer1(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2000 {
		t.Fatalf("rows=%d", tb.Rows())
	}
	acol, _ := tb.Schema().Lookup("amount")
	if tb.Stats(acol).Mean <= 0 {
		t.Fatal("amounts not positive")
	}
}

func TestCustomer1TraceMatchesTable3(t *testing.T) {
	spec := DefaultCustomer1TraceSpec()
	spec.Queries = 1000
	trace := GenerateCustomer1Trace(spec)
	if len(trace) != 1000 {
		t.Fatalf("trace=%d", len(trace))
	}
	tb, err := GenerateCustomer1(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	supported, agg := 0, 0
	var prev TraceEntry
	for i, e := range trace {
		stmt, err := sqlparse.Parse(e.SQL)
		if err != nil {
			t.Fatalf("trace query does not parse: %q: %v", e.SQL, err)
		}
		sup := query.Check(stmt)
		if sup.OK != e.Supported {
			t.Fatalf("classification mismatch for %q: checker=%v entry=%v (%v)",
				e.SQL, sup.OK, e.Supported, sup.Reasons)
		}
		if sup.OK {
			supported++
			if _, err := query.BindRegion(stmt.Where, tb); err != nil {
				t.Fatalf("supported trace query fails bind: %q: %v", e.SQL, err)
			}
		}
		if sup.HasAggregate {
			agg++
		}
		if i > 0 && e.At.Before(prev.At) {
			t.Fatal("trace not time-ordered")
		}
		prev = e
	}
	frac := float64(supported) / float64(agg)
	if math.Abs(frac-0.737) > 0.01 {
		t.Fatalf("supported fraction=%v want ~0.737", frac)
	}
}

func TestUCIDatasets(t *testing.T) {
	if len(UCIDatasetNames) != 16 {
		t.Fatalf("datasets=%d", len(UCIDatasetNames))
	}
	var all []float64
	for i, name := range UCIDatasetNames {
		tb, err := GenerateUCILike(name, i, 42)
		if err != nil {
			t.Fatal(err)
		}
		cs := AllAdjacentCorrelations(tb)
		if len(cs) == 0 {
			t.Fatalf("%s: no correlations", name)
		}
		all = append(all, cs...)
	}
	// Figure 13's point: a substantial share of pairs show clearly positive
	// inter-tuple correlation, while others hover near zero.
	strong, weak := 0, 0
	for _, c := range all {
		if c > 0.3 {
			strong++
		}
		if math.Abs(c) < 0.1 {
			weak++
		}
		if c < -0.9 || c > 1.0001 {
			t.Fatalf("correlation out of range: %v", c)
		}
	}
	if strong == 0 {
		t.Fatal("no strongly correlated pairs — Figure 13 shape lost")
	}
	if weak == 0 {
		t.Fatal("no near-zero pairs — Figure 13 shape lost")
	}
}

func TestAdjacentCorrelationOracle(t *testing.T) {
	// A column equal to its sort key is maximally adjacent-correlated; an
	// i.i.d. column is not.
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "a0", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "a1", Kind: storage.Numeric, Role: storage.Dimension},
	})
	tb := storage.NewTable("x", schema)
	rng := randx.New(9)
	for i := 0; i < 500; i++ {
		v := rng.Uniform(0, 100)
		if err := tb.AppendRow([]storage.Value{storage.Num(v), storage.Num(rng.Normal(0, 1))}); err != nil {
			t.Fatal(err)
		}
	}
	if c := AdjacentCorrelation(tb, 0, 0); c < 0.99 {
		// Sorting a column by itself: adjacent values nearly identical.
		t.Fatalf("self-sorted correlation=%v", c)
	}
	if c := math.Abs(AdjacentCorrelation(tb, 1, 0)); c > 0.15 {
		t.Fatalf("iid adjacent correlation=%v", c)
	}
}
