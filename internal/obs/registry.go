package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ---- primitives ----

// Counter is a monotonically increasing event count. One atomic add per
// increment; safe for concurrent use from any number of goroutines.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value (in-flight requests, pending
// rows). Safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with a CAS loop — the histogram sum.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed buckets chosen at registration.
// An observation costs one binary search over the bounds plus two atomic
// writes; there is no locking, so the hot scan path can observe freely.
type Histogram struct {
	bounds []float64       // finite upper bounds, strictly increasing
	counts []atomic.Uint64 // len(bounds)+1; last entry is the +Inf bucket
	sum    atomicFloat
}

// Observe records one value. Bucket i holds observations v <= bounds[i]
// (Prometheus "le" semantics); values above every bound land in +Inf.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative) and Count is their total, so
// cumulative exposition derived from one snapshot is internally
// consistent by construction.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1; last is the +Inf bucket
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state. Each bucket is read atomically;
// under concurrent observation the snapshot is a consistent lower bound
// per bucket (counts only grow).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Merge adds another snapshot's buckets into this one; the bounds must be
// identical (children of one HistogramVec always are).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if len(s.Counts) == 0 {
		*s = o
		s.Counts = append([]uint64(nil), o.Counts...)
		return
	}
	for i := range o.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts,
// interpolating linearly within the bucket that crosses the target rank —
// the same estimator as Prometheus's histogram_quantile. Observations in
// the +Inf bucket resolve to the highest finite bound. Returns 0 for an
// empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start, each factor times the previous — the fixed layout every
// histogram in the registry uses.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets spans 10µs to ~5.2s in doubling steps — wide
// enough for sub-millisecond parse stages and multi-second full-sample
// scans alike. Latencies are recorded in seconds.
var DefaultLatencyBuckets = ExpBuckets(10e-6, 2, 20)

// ---- families and registry ----

// Sample is one dynamically collected metric value (see CounterFuncVec):
// label values in registration order plus the value at scrape time.
type Sample struct {
	Labels []string
	Value  float64
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one metric name: its metadata plus either static children
// (one per label-value combination) or a scrape-time collector.
type family struct {
	name       string
	help       string
	typ        string
	labelNames []string
	bounds     []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child
	collect  func() []Sample // func families; nil for static ones
}

type child struct {
	labels []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it on first registration.
// Re-registering with the same type, label names and bounds returns the
// existing family (get-or-create); any mismatch panics — a metric name
// must mean one thing for the life of the process.
func (r *Registry) family(name, help, typ string, labelNames []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labelNames, labelNames) || !equalFloats(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type, label set or buckets", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labelNames...),
		bounds:     append([]float64(nil), bounds...),
		children:   make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childKey joins label values with a separator that cannot appear in a
// well-formed label value.
func childKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) child(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := childKey(values)
	f.mu.RLock()
	ch, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok = f.children[key]; ok {
		return ch
	}
	ch = &child{labels: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		ch.c = &Counter{}
	case typeGauge:
		ch.g = &Gauge{}
	case typeHistogram:
		ch.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}
	f.children[key] = ch
	return ch
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, typeCounter, nil, nil).child(nil).c
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, typeGauge, nil, nil).child(nil).g
}

// Histogram registers (or finds) an unlabeled histogram with the given
// bucket bounds (nil selects DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return r.family(name, help, typeHistogram, nil, bounds).child(nil).h
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, typeCounter, labelNames, nil)}
}

// With returns the counter for one label-value combination, creating it
// on first use. Callers on hot paths should capture the child once.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.child(labelValues).c }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, typeGauge, labelNames, nil)}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.child(labelValues).g }

// HistogramVec is a histogram family partitioned by labels; every child
// shares the family's bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family (nil
// bounds selects DefaultLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &HistogramVec{f: r.family(name, help, typeHistogram, labelNames, bounds)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.child(labelValues).h }

// MergedSnapshot sums every child's buckets into one snapshot — the
// whole-family distribution /stats derives its quantiles from.
func (v *HistogramVec) MergedSnapshot() HistogramSnapshot {
	v.f.mu.RLock()
	children := make([]*child, 0, len(v.f.children))
	for _, ch := range v.f.children {
		children = append(children, ch)
	}
	v.f.mu.RUnlock()
	out := HistogramSnapshot{Bounds: v.f.bounds, Counts: make([]uint64, len(v.f.bounds)+1)}
	for _, ch := range children {
		s := ch.h.Snapshot()
		out.Merge(s)
	}
	return out
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// for values the system already tracks elsewhere (in-flight slots,
// retained generations) that would be redundant to mirror.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, typeGauge, nil, nil)
	f.mu.Lock()
	f.collect = func() []Sample { return []Sample{{Value: fn()}} }
	f.mu.Unlock()
}

// CounterFunc registers a counter whose value is read at scrape time. The
// source must be monotone for the exposition to be a well-formed counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, typeCounter, nil, nil)
	f.mu.Lock()
	f.collect = func() []Sample { return []Sample{{Value: fn()}} }
	f.mu.Unlock()
}

// GaugeFuncVec registers a labeled gauge family collected at scrape time:
// collect returns one Sample per label-value combination. Unlike a static
// GaugeVec, the label set may change between scrapes — the per-partition
// sample gauges use this, since a rebuild can change the partition count.
func (r *Registry) GaugeFuncVec(name, help string, labelNames []string, collect func() []Sample) {
	f := r.family(name, help, typeGauge, labelNames, nil)
	f.mu.Lock()
	f.collect = collect
	f.mu.Unlock()
}

// CounterFuncVec registers a labeled counter family collected at scrape
// time: collect returns one Sample per label-value combination (the
// per-shard synopsis counters use this — the shards already count with
// their own atomics).
func (r *Registry) CounterFuncVec(name, help string, labelNames []string, collect func() []Sample) {
	f := r.family(name, help, typeCounter, labelNames, nil)
	f.mu.Lock()
	f.collect = collect
	f.mu.Unlock()
}
