package obs

import (
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// NewLogger builds the structured logger the binaries install: format is
// "text" or "json" (the -log-format flag), level one of debug, info,
// warn, error (-log-level). Request logs carry request and session IDs as
// attributes, so a json-format fleet can be indexed by either.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (text|json)", format)
	}
}

// Request IDs are "r-<8 hex process nonce>-<seq>": unique across
// restarts (the nonce) yet cheap (one atomic add per request) and ordered
// within a process, which makes interleaved request logs sortable.
var (
	ridNonce = func() string {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Uint64
)

// NewRequestID mints a process-unique request identifier.
func NewRequestID() string {
	return fmt.Sprintf("r-%s-%d", ridNonce, ridSeq.Add(1))
}
