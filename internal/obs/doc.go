// Package obs is the observability layer: a dependency-free metrics
// registry (counters, gauges, histograms) with Prometheus text-format
// exposition, the narrow StageTimer interface the query pipeline reports
// per-stage latencies through, and the structured-logging and request-ID
// helpers the serving layer builds its request logs from.
//
// Design constraints, in order:
//
//  1. The hot scan path must not feel the instrumentation. Every metric
//     primitive is a fixed-size structure updated with atomics — one
//     atomic add per counter increment, two per histogram observation —
//     and instrumentation points in internal/aqp and internal/core are
//     nil-guarded, so an unwired engine (benchmarks, experiments, library
//     use) pays a single branch.
//  2. No third-party dependencies. The exposition writer emits the
//     Prometheus text format (version 0.0.4) directly; scrapers and the
//     /stats quantile summary consume the same bucket snapshots.
//  3. Registration is get-or-create: registering an existing family with
//     the same type and label names returns the existing family, so the
//     serving layer and the binaries can wire the same registry without
//     coordinating creation order. A name collision with a different
//     type or label set panics at startup — misregistration is a
//     programming error, not a runtime condition.
//
// Histograms use fixed exponential bucket bounds chosen at registration
// (see ExpBuckets). Latency histograms are recorded in seconds, following
// the Prometheus base-unit convention.
package obs
