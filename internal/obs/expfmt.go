package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4). Families render in
// name order and children in label-value order, so consecutive scrapes of
// a quiet registry are byte-identical — which keeps the exposition tests
// simple and diffs readable.

// TextContentType is the Content-Type of the exposition.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		if err := fams[name].write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) error {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)

	if collect := f.collector(); collect != nil {
		samples := collect()
		sort.Slice(samples, func(i, j int) bool {
			return childKey(samples[i].Labels) < childKey(samples[j].Labels)
		})
		for _, s := range samples {
			fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labelNames, s.Labels, "", ""), formatFloat(s.Value))
		}
		return nil
	}

	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make([]*child, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()

	for _, ch := range children {
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(f.labelNames, ch.labels, "", ""), ch.c.Value())
		case typeGauge:
			fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(f.labelNames, ch.labels, "", ""), ch.g.Value())
		case typeHistogram:
			s := ch.h.Snapshot()
			var cum uint64
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					renderLabels(f.labelNames, ch.labels, "le", formatFloat(b)), cum)
			}
			cum += s.Counts[len(s.Bounds)]
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(f.labelNames, ch.labels, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(f.labelNames, ch.labels, "", ""), formatFloat(s.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(f.labelNames, ch.labels, "", ""), s.Count)
		}
	}
	return nil
}

func (f *family) collector() func() []Sample {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.collect
}

// renderLabels renders {k1="v1",...}, appending one extra pair (the
// histogram "le") when extraName is non-empty. No labels renders as "".
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
