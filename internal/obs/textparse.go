package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText parses a Prometheus text-format exposition into a flat map of
// "name{labels}" → value, with the TYPE of each family in types. It
// understands exactly what WritePrometheus emits — the consistency tests
// (monotone counters, bucket sums) round-trip scrapes through it, so the
// exposition is validated by an independent reader rather than by the
// writer's own structures.
func ParseText(r io.Reader) (values map[string]float64, types map[string]string, err error) {
	values = make(map[string]float64)
	types = make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("line %d: malformed TYPE line %q", line, text)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		// A sample line is "name{labels} value" or "name value"; label
		// values are quoted, so the value separator is the last space.
		i := strings.LastIndexByte(text, ' ')
		if i < 0 {
			return nil, nil, fmt.Errorf("line %d: malformed sample %q", line, text)
		}
		key, raw := text[:i], text[i+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: bad value %q: %w", line, raw, err)
		}
		if _, dup := values[key]; dup {
			return nil, nil, fmt.Errorf("line %d: duplicate sample %q", line, key)
		}
		values[key] = v
	}
	return values, types, sc.Err()
}
