package obs

import "time"

// Stage names one query-pipeline step for latency attribution. The
// pipeline packages (internal/core, internal/aqp) report through the
// StageTimer interface and never see the registry, so instrumentation
// stays a single nil-guarded call at each stage boundary.
type Stage struct {
	// Name is the pipeline step: "parse" (SQL parse + support check),
	// "prune" (region binding, group discovery, decomposition — deciding
	// what to scan), "scan" (the sample scan itself, recorded inside
	// internal/aqp), or "infer" (Bayesian inference + synopsis record).
	Name string
	// Mode distinguishes "oneshot" executions from "progressive" stream
	// increments.
	Mode string
	// Grouped marks grouped (GROUP BY) queries; for the scan stage it
	// reports whether the one-scan grouped kernel ran.
	Grouped bool
}

// Stage and mode constants, so call sites and the metric catalog agree.
const (
	StageParse = "parse"
	StagePrune = "prune"
	StageScan  = "scan"
	StageInfer = "infer"

	ModeOneShot     = "oneshot"
	ModeProgressive = "progressive"
)

// StageTimer receives per-stage wall-clock durations. Implementations
// must be safe for concurrent use; a nil StageTimer disables
// instrumentation (callers nil-check before timing).
type StageTimer interface {
	ObserveStage(st Stage, d time.Duration)
}

// QueryStages is the registry-backed StageTimer: one histogram family
// with {stage, mode, grouped} labels. The eight hot children (4 stages ×
// 2 grouped values for each mode) are created lazily and cached by the
// family, so steady-state observation is a map read under RLock plus two
// atomic writes.
type QueryStages struct {
	hist *HistogramVec
}

// MetricQueryStageSeconds is the stage-latency histogram's name.
const MetricQueryStageSeconds = "verdict_query_stage_duration_seconds"

// NewQueryStages registers (or finds) the stage-latency histogram on r.
func NewQueryStages(r *Registry) *QueryStages {
	return &QueryStages{hist: r.HistogramVec(
		MetricQueryStageSeconds,
		"Wall-clock latency of each query pipeline stage (parse, prune, scan, infer).",
		nil,
		"stage", "mode", "grouped",
	)}
}

// ObserveStage implements StageTimer.
func (q *QueryStages) ObserveStage(st Stage, d time.Duration) {
	grouped := "false"
	if st.Grouped {
		grouped = "true"
	}
	q.hist.With(st.Name, st.Mode, grouped).Observe(d.Seconds())
}

// Snapshot returns the merged distribution across every stage and mode.
func (q *QueryStages) Snapshot() HistogramSnapshot { return q.hist.MergedSnapshot() }
