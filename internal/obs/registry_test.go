package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObsCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// TestObsHistogramBuckets pins the le semantics: an observation equal to
// a bound lands in that bound's bucket, and the per-bucket counts sum to
// the recorded observation count with the exact sum.
func TestObsHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	obs := []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100}
	for _, v := range obs {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // (<=1)=2, (<=2)=2, (<=4)=2, +Inf=2
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != uint64(len(obs)) {
		t.Errorf("count = %d, want %d", s.Count, len(obs))
	}
	var sum float64
	for _, v := range obs {
		sum += v
	}
	if math.Abs(s.Sum-sum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, sum)
	}
}

func TestObsQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", ExpBuckets(0.001, 2, 12))
	// 1000 observations at ~10ms: p50 and p99 should land inside the
	// bucket containing 0.010 (bounds 0.008..0.016).
	for i := 0; i < 1000; i++ {
		h.Observe(0.010)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := s.Quantile(q)
		if v < 0.008 || v > 0.016 {
			t.Errorf("q%.0f = %v, want within (0.008, 0.016]", q*100, v)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestObsExposition validates the text format through the independent
// parser: family types, cumulative bucket monotonicity, _count == +Inf
// bucket, and label escaping.
func TestObsExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a help").Add(3)
	r.GaugeVec("g", "labeled gauge", "kind").With(`we"ird\`).Set(-2)
	h := r.HistogramVec("h_seconds", "hist", []float64{0.1, 1}, "ep")
	h.With("/q").Observe(0.05)
	h.With("/q").Observe(0.5)
	h.With("/q").Observe(5)
	r.GaugeFunc("fn", "computed", func() float64 { return 42.5 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	values, types, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if types["a_total"] != "counter" || types["g"] != "gauge" || types["h_seconds"] != "histogram" {
		t.Errorf("types = %v", types)
	}
	if values["a_total"] != 3 {
		t.Errorf("a_total = %v", values["a_total"])
	}
	if values[`g{kind="we\"ird\\"}`] != -2 {
		t.Errorf("escaped gauge missing: %v", values)
	}
	if values["fn"] != 42.5 {
		t.Errorf("fn = %v", values["fn"])
	}
	b1 := values[`h_seconds_bucket{ep="/q",le="0.1"}`]
	b2 := values[`h_seconds_bucket{ep="/q",le="1"}`]
	binf := values[`h_seconds_bucket{ep="/q",le="+Inf"}`]
	cnt := values[`h_seconds_count{ep="/q"}`]
	if b1 != 1 || b2 != 2 || binf != 3 {
		t.Errorf("buckets = %v %v %v, want 1 2 3", b1, b2, binf)
	}
	if cnt != binf {
		t.Errorf("_count %v != +Inf bucket %v", cnt, binf)
	}
	if sum := values[`h_seconds_sum{ep="/q"}`]; math.Abs(sum-5.55) > 1e-9 {
		t.Errorf("sum = %v, want 5.55", sum)
	}
	// Two scrapes of a quiet registry are byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != text {
		t.Error("scrapes of a quiet registry differ")
	}
}

// TestObsGetOrCreate pins the idempotent-registration contract: same
// shape returns the same family, different shape panics.
func TestObsGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "x")
	c2 := r.Counter("x_total", "x")
	if c1 != c2 {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched re-registration did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

// TestObsConcurrentStorm hammers one registry from many goroutines while
// a scraper renders it, asserting every counter read is monotone and
// every histogram internally consistent. Run with -race.
func TestObsConcurrentStorm(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("storm_total", "", "worker")
	h := r.HistogramVec("storm_seconds", "", ExpBuckets(1e-6, 4, 8), "worker")
	stages := NewQueryStages(r)

	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.With(id).Inc()
				h.With(id).Observe(float64(i%1000) * 1e-6)
				stages.ObserveStage(Stage{Name: StageScan, Mode: ModeOneShot, Grouped: i%2 == 0}, time.Microsecond)
			}
		}(w)
	}
	prev := map[string]float64{}
	for scrape := 0; scrape < 20; scrape++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		values, types, err := ParseText(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for key, v := range values {
			name := key
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_count"), "_sum")
			if types[base] == "counter" || types[name] == "counter" || strings.HasSuffix(name, "_bucket") || strings.HasSuffix(name, "_count") {
				if v < prev[key] {
					t.Fatalf("scrape %d: %s went backwards (%v -> %v)", scrape, key, prev[key], v)
				}
			}
			prev[key] = v
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: _count must equal the +Inf bucket exactly, per child.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	values, _, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for key, v := range values {
		if !strings.Contains(key, `le="+Inf"`) {
			continue
		}
		countKey := strings.Replace(key, "_bucket", "_count", 1)
		countKey = strings.Replace(countKey, `le="+Inf"`, "", 1)
		countKey = strings.Replace(countKey, `,}`, "}", 1)
		countKey = strings.Replace(countKey, `{}`, "", 1)
		cv, ok := values[countKey]
		if !ok {
			t.Fatalf("no _count for %s (looked for %q)", key, countKey)
		}
		if cv != v {
			t.Errorf("%s: +Inf %v != count %v", key, v, cv)
		}
	}
}

func TestObsLoggerAndRequestID(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), `"k":"v"`) {
		t.Errorf("json log missing attr: %s", buf.String())
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Error("bad level accepted")
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || !strings.HasPrefix(a, "r-") {
		t.Errorf("request ids not unique/prefixed: %q %q", a, b)
	}
}
