// Covariance memoization for standing queries. A continuous query
// re-infers its improved estimate on every notify batch, and the dominant
// cost per model entry is the per-dimension squared-exponential integrals
// — pure functions of (lo_a, hi_a, lo_b, hi_b, l). Under appends those
// five floats are unchanged (regions re-bind to bit-equal bounds, training
// hasn't moved the length-scales), so a standing plan can carry one
// PairMemo per (entry, target) pair and skip the erf/exp work entirely.
//
// Bit-identity is by construction, not by tolerance: the memo caches the
// *individual dimension factors*, never the finished product, and
// CovarianceMemo replays the exact left-to-right multiply sequence of
// Covariance. A cached factor is only reused when all five inputs compare
// equal (==), in which case a recomputation would return the same bits —
// SqExp*Integral is deterministic. The signature check is the entire
// correctness argument; no invalidation bookkeeping exists to get wrong:
// trained length-scales, domain growth on unconstrained dimensions, or a
// re-bound region all change some input float and miss the cache.
package kernel

import (
	"math"

	"repro/internal/mathx"
	"repro/internal/query"
	"repro/internal/storage"
)

// dimFactor is one numeric dimension's cached integral factor with the
// five inputs that produced it.
type dimFactor struct {
	aLo, aHi, bLo, bHi, ell float64
	val                     float64
	set                     bool
}

// PairMemo caches the numeric-dimension integral factors of one snippet
// pair's covariance across repeated evaluations. The zero value is ready
// to use. Not safe for concurrent use.
type PairMemo struct {
	dims []dimFactor
}

// CovarianceMemo is Covariance with an optional factor cache; m == nil
// degrades to the uncached computation. The result is bit-identical to
// Covariance(a, b, p) in all cases.
func CovarianceMemo(a, b *query.Snippet, p Params, m *PairMemo) float64 {
	t := a.Table
	dims := t.Schema().DimensionCols()
	if m != nil && len(m.dims) != len(dims) {
		m.dims = make([]dimFactor, len(dims))
	}
	cov := p.Sigma2
	for di, col := range dims {
		def := t.Schema().Col(col)
		if def.Kind == storage.Numeric {
			ra := a.Region.NumRangeOf(col, t)
			rb := b.Region.NumRangeOf(col, t)
			ell, ok := p.Ells[col]
			if !ok || ell <= 0 {
				lo, hi := t.Domain(col)
				ell = math.Max(hi-lo, 1)
			}
			if m != nil {
				d := &m.dims[di]
				if !d.set || d.aLo != ra.Lo || d.aHi != ra.Hi ||
					d.bLo != rb.Lo || d.bHi != rb.Hi || d.ell != ell {
					if a.Kind == query.AvgAgg {
						d.val = mathx.SqExpMeanIntegral(ra.Lo, ra.Hi, rb.Lo, rb.Hi, ell)
					} else {
						d.val = mathx.SqExpDoubleIntegral(ra.Lo, ra.Hi, rb.Lo, rb.Hi, ell)
					}
					d.aLo, d.aHi, d.bLo, d.bHi, d.ell = ra.Lo, ra.Hi, rb.Lo, rb.Hi, ell
					d.set = true
				}
				cov *= d.val
			} else if a.Kind == query.AvgAgg {
				cov *= mathx.SqExpMeanIntegral(ra.Lo, ra.Hi, rb.Lo, rb.Hi, ell)
			} else {
				cov *= mathx.SqExpDoubleIntegral(ra.Lo, ra.Hi, rb.Lo, rb.Hi, ell)
			}
		} else {
			dict := t.DictOf(col).Size()
			if dict == 0 {
				continue
			}
			sa := a.Region.CatSetOf(col)
			sb := b.Region.CatSetOf(col)
			overlap := float64(sa.OverlapCount(sb, dict))
			if a.Kind == query.AvgAgg {
				na, nb := float64(sa.Size(dict)), float64(sb.Size(dict))
				if na == 0 || nb == 0 {
					return 0
				}
				cov *= overlap / (na * nb)
			} else {
				cov *= overlap
			}
		}
		if cov == 0 {
			return 0
		}
	}
	return cov
}
