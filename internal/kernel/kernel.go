// Package kernel implements the analytic inter-tuple covariance machinery
// of Section 4: the squared-exponential covariance function ρ_g (Eq. 9),
// its closed-form double integrals over snippet selection rectangles
// (Eq. 10, Appendix F.1), and the categorical overlap factors of Eq. 16
// (Appendix F.2). Together these turn a pair of query snippets into a
// covariance number in O(l) time — the property Lemma 2's complexity bound
// rests on — without ever enumerating tuples.
//
// Normalization convention (paper omits it "for simplicity"; Appendix F.3
// pins it down): for AVG-type snippets the answer is the *mean* of ν over
// the region, so each numeric dimension contributes the volume-normalized
// mean integral and each categorical dimension contributes
// |F_i∩F_j|/(|F_i|·|F_j|); for FREQ-type snippets ν is a density and the
// answer is the unnormalized integral, so dimensions contribute the plain
// double integral and the plain overlap count.
package kernel

import (
	"fmt"
	"math"

	"repro/internal/query"
	"repro/internal/storage"
)

// Params are the correlation parameters of one aggregate function g
// (§4.2): the kernel scale σ²_g and one length-scale l_{g,k} per numeric
// dimension attribute, keyed by column index.
type Params struct {
	Sigma2 float64
	Ells   map[int]float64
}

// Clone deep-copies the parameters.
func (p Params) Clone() Params {
	out := Params{Sigma2: p.Sigma2, Ells: make(map[int]float64, len(p.Ells))}
	for k, v := range p.Ells {
		out.Ells[k] = v
	}
	return out
}

// Scale returns a copy with every length-scale multiplied by f — the
// "artificial correlation parameter scale" knob of Appendix B.2's
// model-validation experiment (Figure 9).
func (p Params) Scale(f float64) Params {
	out := p.Clone()
	for k := range out.Ells {
		out.Ells[k] *= f
	}
	return out
}

// DefaultParams returns the paper's optimization starting point
// (Appendix A: l_{g,k} = max(A_k) − min(A_k)) with unit σ².
func DefaultParams(t *storage.Table) Params {
	p := Params{Sigma2: 1, Ells: make(map[int]float64)}
	for _, col := range t.Schema().DimensionCols() {
		if t.Schema().Col(col).Kind != storage.Numeric {
			continue
		}
		lo, hi := t.Domain(col)
		ell := hi - lo
		if ell <= 0 {
			ell = 1
		}
		p.Ells[col] = ell
	}
	return p
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if !(p.Sigma2 >= 0) || math.IsInf(p.Sigma2, 0) {
		return fmt.Errorf("kernel: bad sigma2 %v", p.Sigma2)
	}
	for col, ell := range p.Ells {
		if !(ell > 0) || math.IsInf(ell, 0) {
			return fmt.Errorf("kernel: bad length-scale %v for column %d", ell, col)
		}
	}
	return nil
}

// Covariance computes cov(θ̄_i, θ̄_j) between the exact answers of two
// snippets of the same aggregate function, per Eq. 10 extended with
// Eq. 16's categorical factors. Both snippets must be bound to the same
// base relation.
func Covariance(a, b *query.Snippet, p Params) float64 {
	return CovarianceMemo(a, b, p, nil)
}

// Variance is Covariance(s, s, p): the prior variance κ̄² of one snippet's
// exact answer.
func Variance(s *query.Snippet, p Params) float64 {
	return Covariance(s, s, p)
}

// RegionMeasure returns |F_i| as Appendix F.3 uses it to convert FREQ
// answers into densities: the numeric hyper-rectangle volume times the
// admitted categorical value count. Dimensions with zero width contribute
// a factor of 1 so degenerate regions stay usable.
func RegionMeasure(s *query.Snippet) float64 {
	t := s.Table
	v := 1.0
	for _, col := range t.Schema().DimensionCols() {
		def := t.Schema().Col(col)
		if def.Kind == storage.Numeric {
			w := s.Region.NumRangeOf(col, t).Width()
			if w > 0 {
				v *= w
			}
		} else {
			dict := t.DictOf(col).Size()
			if dict == 0 {
				continue
			}
			n := s.Region.CatSetOf(col).Size(dict)
			if n > 0 {
				v *= float64(n)
			}
		}
	}
	return v
}

// PriorMean converts the model-level mean statistic μ (a value mean for
// AVG, a density mean for FREQ; Appendix F.3) into the prior mean of one
// snippet's answer.
func PriorMean(s *query.Snippet, mu float64) float64 {
	if s.Kind == query.FreqAgg {
		return mu * RegionMeasure(s)
	}
	return mu
}

// Observation converts one snippet's raw answer into the model-level
// statistic used for estimating μ and σ² (Appendix F.3): the answer itself
// for AVG, the density θ/|F| for FREQ.
func Observation(s *query.Snippet, theta float64) float64 {
	if s.Kind == query.FreqAgg {
		m := RegionMeasure(s)
		if m == 0 {
			return 0
		}
		return theta / m
	}
	return theta
}
