package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
)

func testTable(t *testing.T) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 100},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "rev", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("t", schema)
	for _, r := range []string{"a", "b", "c", "d"} {
		if err := tb.AppendRow([]storage.Value{storage.Num(50), storage.Str(r), storage.Num(1)}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// snip builds a snippet with the given week range and region list (nil =
// unconstrained) for the given aggregate kind.
func snip(t *testing.T, tb *storage.Table, kind query.AggKind, lo, hi float64, regions []string) *query.Snippet {
	t.Helper()
	g := query.NewRegion(tb.Schema())
	wcol, _ := tb.Schema().Lookup("week")
	g.ConstrainNum(wcol, query.NumRange{Lo: lo, Hi: hi})
	if regions != nil {
		rcol, _ := tb.Schema().Lookup("region")
		var codes []int32
		for _, r := range regions {
			if c, ok := tb.DictOf(rcol).LookupCode(r); ok {
				codes = append(codes, c)
			}
		}
		if codes == nil {
			codes = []int32{}
		}
		// Codes come from insertion order a<b<c<d, already sorted.
		g.ConstrainCat(rcol, query.CatSet{Codes: codes})
	}
	sn := &query.Snippet{Kind: kind, Region: g, Table: tb}
	if kind == query.AvgAgg {
		sn.MeasureKey = "rev"
		col, _ := tb.Schema().Lookup("rev")
		sn.Measure = func(tb *storage.Table, row int) float64 { return tb.NumAt(row, col) }
	}
	return sn
}

func params(tb *storage.Table, ell float64) Params {
	p := DefaultParams(tb)
	for k := range p.Ells {
		p.Ells[k] = ell
	}
	p.Sigma2 = 2.5
	return p
}

func TestCovarianceSymmetry(t *testing.T) {
	tb := testTable(t)
	p := params(tb, 20)
	f := func(seed int64) bool {
		r := randx.New(seed)
		mk := func() *query.Snippet {
			lo := r.Uniform(0, 80)
			hi := lo + r.Uniform(1, 20)
			var regs []string
			if r.Bool(0.5) {
				all := []string{"a", "b", "c", "d"}
				for _, x := range all {
					if r.Bool(0.5) {
						regs = append(regs, x)
					}
				}
				if regs == nil {
					regs = []string{"a"}
				}
			}
			kind := query.AvgAgg
			if r.Bool(0.5) {
				kind = query.FreqAgg
			}
			return snip(t, tb, kind, lo, hi, regs)
		}
		a := mk()
		b := mk()
		b.Kind = a.Kind // covariance is defined within one aggregate function
		if a.Kind == query.AvgAgg {
			b.MeasureKey, b.Measure = a.MeasureKey, a.Measure
		} else {
			b.MeasureKey, b.Measure = "", nil
		}
		x := Covariance(a, b, p)
		y := Covariance(b, a, p)
		return math.Abs(x-y) <= 1e-12*(1+math.Abs(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIdenticalAvgSnippetsFullCorrelation(t *testing.T) {
	tb := testTable(t)
	p := params(tb, 1e9) // kernel ~ constant within any region
	a := snip(t, tb, query.AvgAgg, 10, 30, []string{"a"})
	v := Variance(a, p)
	// With a flat kernel, the AVG self-variance is σ²·1·(1/|F_cat|) = σ².
	if math.Abs(v-p.Sigma2) > 1e-6 {
		t.Fatalf("self variance=%v want %v", v, p.Sigma2)
	}
	// Identical snippets: correlation exactly 1.
	b := snip(t, tb, query.AvgAgg, 10, 30, []string{"a"})
	c := Covariance(a, b, p)
	if math.Abs(c-v) > 1e-9 {
		t.Fatalf("cov=%v var=%v", c, v)
	}
}

func TestCovarianceDecaysWithDistance(t *testing.T) {
	tb := testTable(t)
	p := params(tb, 10)
	base := snip(t, tb, query.AvgAgg, 0, 10, nil)
	prev := math.Inf(1)
	for _, start := range []float64{0, 10, 20, 40, 70} {
		other := snip(t, tb, query.AvgAgg, start, start+10, nil)
		c := Covariance(base, other, p)
		if c <= 0 {
			t.Fatalf("covariance not positive at offset %v: %v", start, c)
		}
		if c >= prev {
			t.Fatalf("covariance did not decay at offset %v: %v >= %v", start, c, prev)
		}
		prev = c
	}
}

func TestDisjointCategoriesZeroCovariance(t *testing.T) {
	tb := testTable(t)
	p := params(tb, 20)
	a := snip(t, tb, query.FreqAgg, 10, 30, []string{"a", "b"})
	b := snip(t, tb, query.FreqAgg, 10, 30, []string{"c"})
	if c := Covariance(a, b, p); c != 0 {
		t.Fatalf("disjoint categories cov=%v", c)
	}
	// Overlapping categories: positive.
	c2 := snip(t, tb, query.FreqAgg, 10, 30, []string{"b", "c"})
	if c := Covariance(a, c2, p); c <= 0 {
		t.Fatalf("overlapping categories cov=%v", c)
	}
}

func TestFreqCovarianceScalesWithOverlap(t *testing.T) {
	tb := testTable(t)
	p := params(tb, 20)
	a := snip(t, tb, query.FreqAgg, 10, 30, nil) // all 4 regions
	one := snip(t, tb, query.FreqAgg, 10, 30, []string{"a"})
	two := snip(t, tb, query.FreqAgg, 10, 30, []string{"a", "b"})
	ca := Covariance(a, one, p)
	cb := Covariance(a, two, p)
	if math.Abs(cb-2*ca) > 1e-9*cb {
		t.Fatalf("FREQ overlap scaling: %v vs 2×%v", cb, ca)
	}
}

// buildSigma assembles the covariance matrix of n random snippets' exact
// answers; used to check positive-semidefiniteness via Cholesky.
func TestCovarianceMatrixPSD(t *testing.T) {
	tb := testTable(t)
	p := params(tb, 15)
	f := func(seed int64) bool {
		r := randx.New(seed)
		n := 2 + r.Intn(12)
		sns := make([]*query.Snippet, n)
		for i := range sns {
			lo := r.Uniform(0, 90)
			sns[i] = snip(t, tb, query.AvgAgg, lo, lo+r.Uniform(1, 10), nil)
		}
		m := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, Covariance(sns[i], sns[j], p))
			}
			// The β² diagonal Eq. 6 adds in practice; a tiny term here keeps
			// the test about PSD-ness rather than exact rank.
			m.Add(i, i, 1e-9)
		}
		_, err := linalg.NewCholesky(m)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionMeasure(t *testing.T) {
	tb := testTable(t)
	a := snip(t, tb, query.FreqAgg, 10, 30, []string{"a", "b"})
	// width 20 × 2 categories = 40.
	if m := RegionMeasure(a); math.Abs(m-40) > 1e-9 {
		t.Fatalf("measure=%v", m)
	}
	// Unconstrained categorical: all 4 values; unconstrained week = domain 100.
	b := snip(t, tb, query.FreqAgg, 0, 100, nil)
	if m := RegionMeasure(b); math.Abs(m-400) > 1e-9 {
		t.Fatalf("measure=%v", m)
	}
	// Degenerate numeric range contributes factor 1.
	c := snip(t, tb, query.FreqAgg, 5, 5, []string{"a"})
	if m := RegionMeasure(c); math.Abs(m-1) > 1e-9 {
		t.Fatalf("degenerate measure=%v", m)
	}
}

func TestPriorMeanAndObservation(t *testing.T) {
	tb := testTable(t)
	avg := snip(t, tb, query.AvgAgg, 10, 30, nil)
	if PriorMean(avg, 7) != 7 || Observation(avg, 7) != 7 {
		t.Fatal("AVG prior/observation must pass through")
	}
	freq := snip(t, tb, query.FreqAgg, 10, 30, []string{"a"})
	m := RegionMeasure(freq) // 20
	if got := PriorMean(freq, 0.01); math.Abs(got-0.01*m) > 1e-12 {
		t.Fatalf("freq prior=%v", got)
	}
	if got := Observation(freq, 0.4); math.Abs(got-0.4/m) > 1e-12 {
		t.Fatalf("freq obs=%v", got)
	}
	// Round trip.
	if got := PriorMean(freq, Observation(freq, 0.4)); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("round trip=%v", got)
	}
}

func TestParamsHelpers(t *testing.T) {
	tb := testTable(t)
	p := DefaultParams(tb)
	wcol, _ := tb.Schema().Lookup("week")
	if p.Ells[wcol] != 100 {
		t.Fatalf("default ell=%v", p.Ells[wcol])
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.Scale(0.5)
	if s.Ells[wcol] != 50 || p.Ells[wcol] != 100 {
		t.Fatal("Scale must copy")
	}
	c := p.Clone()
	c.Ells[wcol] = 1
	if p.Ells[wcol] != 100 {
		t.Fatal("Clone aliases")
	}
	bad := Params{Sigma2: -1}
	if bad.Validate() == nil {
		t.Fatal("negative sigma accepted")
	}
	bad2 := Params{Sigma2: 1, Ells: map[int]float64{0: 0}}
	if bad2.Validate() == nil {
		t.Fatal("zero ell accepted")
	}
}

func TestVarianceLargerForWiderFreqRegions(t *testing.T) {
	tb := testTable(t)
	p := params(tb, 10)
	narrow := snip(t, tb, query.FreqAgg, 10, 20, nil)
	wide := snip(t, tb, query.FreqAgg, 10, 60, nil)
	if Variance(wide, p) <= Variance(narrow, p) {
		t.Fatal("FREQ variance must grow with region size")
	}
}

// TestStandingCovarianceMemoBitIdentical is the memo correctness property:
// CovarianceMemo with a carried PairMemo must return the exact bits of the
// uncached Covariance under any interleaving of repeated calls, length-scale
// changes, sigma changes, and region changes. The signature check on the
// five factor inputs is the entire invalidation story, so the test hammers
// the transitions where stale reuse would show: same inputs twice (hit),
// perturbed ell (miss), restored ell (hit again), new snippet pair through
// the same memo (miss).
func TestStandingCovarianceMemoBitIdentical(t *testing.T) {
	tb := testTable(t)
	f := func(seed int64) bool {
		r := randx.New(seed)
		mk := func(kind query.AggKind) *query.Snippet {
			lo := r.Uniform(0, 80)
			hi := lo + r.Uniform(1, 20)
			var regs []string
			if r.Bool(0.5) {
				for _, x := range []string{"a", "b", "c", "d"} {
					if r.Bool(0.5) {
						regs = append(regs, x)
					}
				}
				if regs == nil {
					regs = []string{"a"}
				}
			}
			return snip(t, tb, kind, lo, hi, regs)
		}
		kind := query.AvgAgg
		if r.Bool(0.5) {
			kind = query.FreqAgg
		}
		a, b := mk(kind), mk(kind)
		var m PairMemo
		ells := []float64{20, 20, 7, 20, 1e9} // repeat → hit, change → miss, restore → hit
		for _, ell := range ells {
			p := params(tb, ell)
			if r.Bool(0.3) {
				p.Sigma2 = 1 + r.Uniform(0, 5)
			}
			got := CovarianceMemo(a, b, p, &m)
			want := Covariance(a, b, p)
			if got != want {
				t.Logf("seed %d ell %v: memo %v fresh %v", seed, ell, got, want)
				return false
			}
		}
		// A different pair through the same memo: every factor signature
		// changes, so the cache must miss rather than leak the old values.
		a2, b2 := mk(kind), mk(kind)
		p := params(tb, 20)
		if got, want := CovarianceMemo(a2, b2, p, &m), Covariance(a2, b2, p); got != want {
			t.Logf("seed %d reused memo: %v fresh %v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
