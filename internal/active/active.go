// Package active implements active database learning — the future-work
// direction the paper's §10 names ("the engine itself proactively executes
// certain approximate queries that can best improve its internal model",
// citing Park's CIDR 2017 abstract). The planner scores candidate snippets
// by the model's current predictive variance γ² (Eq. 11) and spends an
// idle-time budget answering the most uncertain ones cheaply through the
// AQP engine, recording the results into the synopsis. Because γ² is
// exactly the variance the improved answer inherits when the raw answer is
// weak, probing the arg-max candidate is the greedy step that most reduces
// future improved errors over the candidate set.
package active

import (
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/storage"
)

// ErrNoCandidates is returned when a campaign has nothing to probe.
var ErrNoCandidates = errors.New("active: no candidates")

// Scored pairs a candidate snippet with the model's predictive variance.
type Scored struct {
	Snippet *query.Snippet
	Gamma2  float64
}

// Rank scores every candidate by predictive variance under the current
// model (highest first). Candidates whose aggregate function has no model
// yet score at their prior variance — maximally informative.
func Rank(v *core.Verdict, candidates []*query.Snippet) []Scored {
	out := make([]Scored, 0, len(candidates))
	for _, sn := range candidates {
		inf := v.Infer(sn, query.ScalarEstimate{Value: 0, StdErr: math.Inf(1)})
		g := inf.Gamma2
		if math.IsNaN(g) {
			g = 0
		}
		out = append(out, Scored{Snippet: sn, Gamma2: g})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Gamma2 > out[j].Gamma2 })
	return out
}

// Step records one probe of a campaign.
type Step struct {
	Snippet *query.Snippet
	// Gamma2Before is the predictive variance that selected this probe.
	Gamma2Before float64
	// Estimate is the raw answer recorded into the synopsis.
	Estimate query.ScalarEstimate
	// SimTime is the simulated engine time the probe consumed.
	SimTime time.Duration
}

// Config tunes a campaign.
type Config struct {
	// Rounds is the number of probes to execute.
	Rounds int
	// Batches bounds how many online-aggregation batches each probe may
	// consume — probes are deliberately cheap, coarse answers (default 2).
	Batches int
	// MinGamma2 stops the campaign early once the most uncertain candidate
	// falls below this threshold (0 disables).
	MinGamma2 float64
}

// Campaign greedily probes the highest-variance candidate, records the
// answer, and repeats with the refreshed model. Probed candidates are not
// revisited. It returns the executed steps.
func Campaign(v *core.Verdict, engine *aqp.Engine, candidates []*query.Snippet, cfg Config) ([]Step, error) {
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 2
	}
	remaining := append([]*query.Snippet(nil), candidates...)
	var steps []Step
	for round := 0; round < cfg.Rounds && len(remaining) > 0; round++ {
		ranked := Rank(v, remaining)
		best := ranked[0]
		if cfg.MinGamma2 > 0 && best.Gamma2 < cfg.MinGamma2 {
			break
		}
		// Cheap probe: a few online-aggregation batches.
		var upd aqp.BatchUpdate
		engine.OnlineAggregate([]*query.Snippet{best.Snippet}, func(u aqp.BatchUpdate) bool {
			upd = u
			return u.Batch < cfg.Batches-1
		})
		if len(upd.Valid) == 1 && upd.Valid[0] {
			est := aqp.Sanitize(upd.Estimates[0])
			v.Record(best.Snippet, est)
			steps = append(steps, Step{
				Snippet:      best.Snippet,
				Gamma2Before: best.Gamma2,
				Estimate:     est,
				SimTime:      upd.SimTime,
			})
		}
		// Drop the probed candidate.
		key := best.Snippet.Key()
		kept := remaining[:0]
		for _, sn := range remaining {
			if sn.Key() != key {
				kept = append(kept, sn)
			}
		}
		remaining = kept
	}
	return steps, nil
}

// MeanUncertainty reports the average predictive variance over a probe set
// — the quantity a campaign is trying to push down; tests and diagnostics
// compare it before and after.
func MeanUncertainty(v *core.Verdict, probes []*query.Snippet) float64 {
	if len(probes) == 0 {
		return 0
	}
	sum := 0.0
	for _, sn := range probes {
		inf := v.Infer(sn, query.ScalarEstimate{Value: 0, StdErr: math.Inf(1)})
		sum += inf.Gamma2
	}
	return sum / float64(len(probes))
}

// Grid1D generates candidate snippets tiling one numeric dimension with
// windows of the given width (overlapping by half a window), built by the
// caller-supplied constructor.
func Grid1D(tb *storage.Table, col int, width float64, mk func(region *query.Region) *query.Snippet) []*query.Snippet {
	lo, hi := tb.Domain(col)
	if width <= 0 || hi <= lo {
		return nil
	}
	var out []*query.Snippet
	for start := lo; start < hi; start += width / 2 {
		end := start + width
		if end > hi {
			end = hi
		}
		g := query.NewRegion(tb.Schema())
		g.ConstrainNum(col, query.NumRange{Lo: start, Hi: end})
		out = append(out, mk(g))
		if end == hi {
			break
		}
	}
	return out
}
