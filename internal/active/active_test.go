package active

import (
	"math"
	"testing"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
	"repro/internal/workload"
)

// fixture: planted 1-D table, engine and a Verdict whose synopsis covers
// ONLY the left half of the domain.
func fixture(t *testing.T) (*storage.Table, *aqp.Engine, *core.Verdict, func(*query.Region) *query.Snippet) {
	t.Helper()
	tb, _, err := workload.GeneratePlanted1D(workload.Planted1DSpec{
		Rows: 8000, Ell: 15, Sigma2: 9, NoiseStd: 0.2, Domain: 100, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	sample, err := aqp.BuildSample(tb, 0.5, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	engine := aqp.NewEngine(tb, sample, aqp.CachedCost)

	xcol, _ := tb.Schema().Lookup("x")
	ycol, _ := tb.Schema().Lookup("y")
	mk := func(g *query.Region) *query.Snippet {
		return &query.Snippet{
			Kind: query.AvgAgg, MeasureKey: "y",
			Measure: func(t *storage.Table, row int) float64 { return t.NumAt(row, ycol) },
			Region:  g, Table: tb,
		}
	}
	v := core.New(tb, core.Config{})
	v.SetParams(query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"},
		kernel.Params{Sigma2: 9, Ells: map[int]float64{xcol: 15}})
	rng := randx.New(33)
	for i := 0; i < 12; i++ {
		lo := rng.Uniform(0, 40) // left half only
		g := query.NewRegion(tb.Schema())
		g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: lo + 8})
		sn := mk(g)
		upd := engine.RunToCompletion([]*query.Snippet{sn})
		if upd.Valid[0] {
			v.Record(sn, upd.Estimates[0])
		}
	}
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}
	return tb, engine, v, mk
}

func TestRankPrefersUncoveredRegions(t *testing.T) {
	tb, _, v, mk := fixture(t)
	xcol, _ := tb.Schema().Lookup("x")
	cands := Grid1D(tb, xcol, 10, mk)
	if len(cands) < 10 {
		t.Fatalf("grid too small: %d", len(cands))
	}
	ranked := Rank(v, cands)
	// The most uncertain candidates must lie in the uncovered right half.
	for i := 0; i < 3; i++ {
		r := ranked[i].Snippet.Region.NumRangeOf(xcol, tb)
		if r.Lo < 45 {
			t.Fatalf("top-%d candidate covers trained region: [%v,%v]", i, r.Lo, r.Hi)
		}
	}
	// And the least uncertain in the covered left half.
	last := ranked[len(ranked)-1].Snippet.Region.NumRangeOf(xcol, tb)
	if last.Lo > 40 {
		t.Fatalf("least uncertain candidate not in covered region: [%v,%v]", last.Lo, last.Hi)
	}
	// Scores must be non-increasing.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Gamma2 > ranked[i-1].Gamma2+1e-12 {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestCampaignReducesUncertainty(t *testing.T) {
	tb, engine, v, mk := fixture(t)
	xcol, _ := tb.Schema().Lookup("x")
	cands := Grid1D(tb, xcol, 10, mk)
	probes := Grid1D(tb, xcol, 5, mk) // evaluation set

	before := MeanUncertainty(v, probes)
	steps, err := Campaign(v, engine, cands, Config{Rounds: 6, Batches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 {
		t.Fatalf("steps=%d", len(steps))
	}
	after := MeanUncertainty(v, probes)
	if after >= before*0.7 {
		t.Fatalf("campaign did not reduce uncertainty: %v -> %v", before, after)
	}
	// Steps must have probed distinct snippets, in decreasing-variance
	// order of selection (each step's before-variance reflects the model
	// at selection time, so only check distinctness).
	seen := map[string]bool{}
	for _, s := range steps {
		key := s.Snippet.Key()
		if seen[key] {
			t.Fatalf("candidate probed twice: %s", key)
		}
		seen[key] = true
		if s.SimTime <= 0 {
			t.Fatal("step missing simulated time")
		}
	}
}

func TestCampaignBeatsRandomProbing(t *testing.T) {
	// Greedy max-variance probing must reduce evaluation-set uncertainty at
	// least as much as spending the same budget on arbitrary candidates.
	tb, engine, vActive, mk := fixture(t)
	_, _, vRandom, _ := fixture(t)
	xcol, _ := tb.Schema().Lookup("x")
	cands := Grid1D(tb, xcol, 10, mk)
	probes := Grid1D(tb, xcol, 5, mk)

	if _, err := Campaign(vActive, engine, cands, Config{Rounds: 4, Batches: 2}); err != nil {
		t.Fatal(err)
	}
	// Random arm: probe the first four candidates (all in the already-
	// covered left half — the degenerate choice active learning avoids).
	for _, sn := range cands[:4] {
		var upd aqp.BatchUpdate
		engine.OnlineAggregate([]*query.Snippet{sn}, func(u aqp.BatchUpdate) bool {
			upd = u
			return u.Batch < 1
		})
		if upd.Valid[0] {
			vRandom.Record(sn, upd.Estimates[0])
		}
	}
	act := MeanUncertainty(vActive, probes)
	rnd := MeanUncertainty(vRandom, probes)
	if act >= rnd {
		t.Fatalf("active %v not better than naive %v", act, rnd)
	}
}

func TestCampaignEarlyStop(t *testing.T) {
	tb, engine, v, mk := fixture(t)
	xcol, _ := tb.Schema().Lookup("x")
	cands := Grid1D(tb, xcol, 10, mk)
	steps, err := Campaign(v, engine, cands, Config{Rounds: 50, Batches: 1, MinGamma2: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || len(steps) >= 50 {
		t.Fatalf("early stop did not engage sensibly: %d steps", len(steps))
	}
	// After stopping, every remaining candidate is below the threshold.
	for _, s := range Rank(v, cands) {
		if s.Gamma2 > 1.0+1e-9 {
			t.Fatalf("candidate above threshold after campaign: %v", s.Gamma2)
		}
	}
}

func TestCampaignErrors(t *testing.T) {
	_, engine, v, _ := fixture(t)
	if _, err := Campaign(v, engine, nil, Config{}); err == nil {
		t.Fatal("empty candidate set accepted")
	}
}

func TestGrid1D(t *testing.T) {
	tb, _, _, mk := fixture(t)
	xcol, _ := tb.Schema().Lookup("x")
	cands := Grid1D(tb, xcol, 20, mk)
	// Domain 100, width 20, stride 10 → windows starting 0,10,...,80 → 9.
	if len(cands) != 9 {
		t.Fatalf("grid size=%d", len(cands))
	}
	first := cands[0].Region.NumRangeOf(xcol, tb)
	lastR := cands[len(cands)-1].Region.NumRangeOf(xcol, tb)
	if first.Lo > 1 || math.Abs(lastR.Hi-100) > 1 {
		t.Fatalf("grid coverage wrong: first=%+v last=%+v", first, lastR)
	}
	if Grid1D(tb, xcol, 0, mk) != nil {
		t.Fatal("zero width should return nil")
	}
}
