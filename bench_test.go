// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation (one Benchmark per artifact, delegating to
// internal/experiments) and measures the core operations behind Lemma 2's
// complexity claims (inference, synopsis maintenance, kernel covariance,
// Cholesky solves, parsing, scan throughput).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks print their report tables under -v via b.Log. Set
// REPRO_SCALE=full for paper-sized runs (several minutes each).
package repro

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/server"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/workload"
)

func benchScale() experiments.Scale {
	if os.Getenv("REPRO_SCALE") == "full" {
		return experiments.Full
	}
	return experiments.Small
}

// benchExperiment runs one registered experiment per iteration and logs its
// report on the first.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := runner(experiments.Options{Scale: benchScale(), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep.String())
		}
	}
}

// One benchmark per paper artifact (see DESIGN.md §5 for the index).

func BenchmarkTable3Generality(b *testing.B)             { benchExperiment(b, "table3") }
func BenchmarkTable4SpeedupErrorReduction(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5Overhead(b *testing.B)               { benchExperiment(b, "table5") }
func BenchmarkFigure1ModelRefinement(b *testing.B)       { benchExperiment(b, "figure1") }
func BenchmarkFigure4RuntimeErrorCurves(b *testing.B)    { benchExperiment(b, "figure4") }
func BenchmarkFigure5ConfidenceIntervals(b *testing.B)   { benchExperiment(b, "figure5") }
func BenchmarkFigure6aWorkloadDiversity(b *testing.B)    { benchExperiment(b, "figure6a") }
func BenchmarkFigure6bDataDistributions(b *testing.B)    { benchExperiment(b, "figure6b") }
func BenchmarkFigure6cLearningBehavior(b *testing.B)     { benchExperiment(b, "figure6c") }
func BenchmarkFigure6dOverheadGrowth(b *testing.B)       { benchExperiment(b, "figure6d") }
func BenchmarkFigure7ParameterLearning(b *testing.B)     { benchExperiment(b, "figure7") }
func BenchmarkFigure9ModelValidation(b *testing.B)       { benchExperiment(b, "figure9") }
func BenchmarkFigure10VsCaching(b *testing.B)            { benchExperiment(b, "figure10") }
func BenchmarkFigure11TimeBound(b *testing.B)            { benchExperiment(b, "figure11") }
func BenchmarkFigure12DataAppend(b *testing.B)           { benchExperiment(b, "figure12") }
func BenchmarkFigure13IntertupleCovariance(b *testing.B) { benchExperiment(b, "figure13") }

// ---- Core micro-benchmarks ----

// inferenceFixture builds a Verdict with n past snippets over a planted
// table, returning a fresh snippet + raw estimate to infer.
func inferenceFixture(b *testing.B, n int) (*core.Verdict, *query.Snippet, query.ScalarEstimate) {
	b.Helper()
	tb, _, err := workload.GeneratePlanted1D(workload.Planted1DSpec{
		Rows: 2000, Ell: 15, Sigma2: 9, NoiseStd: 0.2, Domain: 100, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(9)
	v := core.New(tb, core.Config{})
	xcol, _ := tb.Schema().Lookup("x")
	v.SetParams(query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"},
		kernel.Params{Sigma2: 9, Ells: map[int]float64{xcol: 15}})
	mk := func(lo, hi float64) *query.Snippet {
		g := query.NewRegion(tb.Schema())
		g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: hi})
		ycol, _ := tb.Schema().Lookup("y")
		return &query.Snippet{
			Kind: query.AvgAgg, MeasureKey: "y",
			Measure: func(t *storage.Table, row int) float64 { return t.NumAt(row, ycol) },
			Region:  g, Table: tb,
		}
	}
	for i := 0; i < n; i++ {
		lo := rng.Uniform(0, 90)
		v.Record(mk(lo, lo+rng.Uniform(2, 8)),
			query.ScalarEstimate{Value: rng.Normal(0, 3), StdErr: 0.2})
	}
	if err := v.Train(); err != nil {
		b.Fatal(err)
	}
	return v, mk(40, 50), query.ScalarEstimate{Value: 0.5, StdErr: 0.4}
}

// BenchmarkInference measures one improved-answer computation (Eq. 11–12 +
// validation) against synopsis sizes — the O(n²) claim of Lemma 2.
func BenchmarkInference(b *testing.B) {
	for _, n := range []int{10, 100, 500, 1000} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			v, sn, raw := inferenceFixture(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = v.Infer(sn, raw)
			}
		})
	}
}

// BenchmarkRecordIncremental measures the O(n²) incremental synopsis update.
func BenchmarkRecordIncremental(b *testing.B) {
	for _, n := range []int{100, 500} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			v, sn, raw := inferenceFixture(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Record(sn, raw) // same key: refresh path
			}
		})
	}
}

// BenchmarkKernelCovariance measures one snippet-pair covariance (Eq. 10).
func BenchmarkKernelCovariance(b *testing.B) {
	tb, _, err := workload.GeneratePlanted1D(workload.Planted1DSpec{
		Rows: 100, Ell: 15, Sigma2: 9, NoiseStd: 0.2, Domain: 100, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	xcol, _ := tb.Schema().Lookup("x")
	mk := func(lo, hi float64) *query.Snippet {
		g := query.NewRegion(tb.Schema())
		g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: hi})
		return &query.Snippet{Kind: query.FreqAgg, Region: g, Table: tb}
	}
	s1, s2 := mk(10, 30), mk(20, 50)
	p := kernel.Params{Sigma2: 2, Ells: map[int]float64{xcol: 15}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kernel.Covariance(s1, s2, p)
	}
}

// BenchmarkCholesky measures factorization + solve at synopsis scale.
func BenchmarkCholesky(b *testing.B) {
	for _, n := range []int{100, 500} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			rng := randx.New(4)
			l := linalg.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					l.Set(i, j, rng.Normal(0, 1))
				}
				l.Set(i, i, 1+rng.Float64())
			}
			a, err := l.Mul(l.Transpose())
			if err != nil {
				b.Fatal(err)
			}
			rhs := make([]float64, n)
			for i := range rhs {
				rhs[i] = rng.Normal(0, 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := linalg.NewCholesky(a)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Solve(rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParser measures SQL parsing + the supported-query check.
func BenchmarkParser(b *testing.B) {
	sql := `SELECT region, AVG(revenue), SUM(revenue * discount) FROM sales ` +
		`WHERE week BETWEEN 3 AND 17 AND region IN ('east', 'west') GROUP BY region HAVING SUM(revenue) > 100`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			b.Fatal(err)
		}
		_ = query.Check(stmt)
	}
}

// ---- Scan-engine comparison: row-at-a-time vs vectorized blocks ----

// scanBenchRows is the relation size for the scan-mode comparison: ≥1M rows
// so the win is measured at scale, not in cache-warm noise.
const scanBenchRows = 1_000_000

var (
	scanBenchOnce  sync.Once
	scanBenchTable *storage.Table
	scanBenchSnip  *query.Snippet
)

// scanBenchSetup builds (once) a 1M-row relation whose constrained dimension
// is clustered — the layout block zone maps are designed for — plus an AVG
// snippet with a ~5%-selective predicate.
func scanBenchSetup(b *testing.B) (*storage.Table, *query.Snippet) {
	b.Helper()
	scanBenchOnce.Do(func() {
		schema := storage.MustSchema([]storage.ColumnDef{
			{Name: "x", Kind: storage.Numeric, Role: storage.Dimension},
			{Name: "grp", Kind: storage.Categorical, Role: storage.Dimension},
			{Name: "v", Kind: storage.Numeric, Role: storage.Measure},
		})
		tb := storage.NewTable("scan", schema)
		rng := randx.New(99)
		groups := []string{"a", "b", "c", "d"}
		for i := 0; i < scanBenchRows; i++ {
			x := float64(i) / scanBenchRows * 100
			if err := tb.AppendRow([]storage.Value{
				storage.Num(x),
				storage.Str(groups[i%len(groups)]),
				storage.Num(10 + x + rng.Normal(0, 1)),
			}); err != nil {
				panic(err)
			}
		}
		xcol, _ := schema.Lookup("x")
		vcol, _ := schema.Lookup("v")
		g := query.NewRegion(schema)
		g.ConstrainNum(xcol, query.NumRange{Lo: 42, Hi: 47})
		scanBenchTable = tb
		scanBenchSnip = &query.Snippet{
			Kind: query.AvgAgg, MeasureKey: "v",
			Measure: func(t *storage.Table, row int) float64 { return t.NumAt(row, vcol) },
			Region:  g, Table: tb,
		}
	})
	return scanBenchTable, scanBenchSnip
}

func benchScanMode(b *testing.B, mode aqp.ScanMode) {
	tb, sn := scanBenchSetup(b)
	sample := &aqp.Sample{Data: tb, Fraction: 1, BatchSize: tb.Rows(), BaseRows: tb.Rows()}
	engine := aqp.NewEngine(tb, sample, aqp.CachedCost)
	engine.SetScanMode(mode)
	snips := []*query.Snippet{sn}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = engine.RunToCompletion(snips)
	}
	b.ReportMetric(float64(tb.Rows())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
}

// BenchmarkScanRowAtATime is the legacy baseline: per-row predicate dispatch
// via Region.Matches, no data-parallelism within a snippet.
func BenchmarkScanRowAtATime(b *testing.B) { benchScanMode(b, aqp.ScanRowAtATime) }

// BenchmarkScanVectorized is the block-partitioned pipeline: zone-map
// pruning, columnar selection vectors, batch moment folds and GOMAXPROCS
// block workers. The acceptance bar is ≥2× over BenchmarkScanRowAtATime.
func BenchmarkScanVectorized(b *testing.B) { benchScanMode(b, aqp.ScanVectorized) }

// BenchmarkEngineScan measures the AQP engine's snippet-evaluation scan
// throughput (rows/op reported as custom metric).
func BenchmarkEngineScan(b *testing.B) {
	tb, err := workload.GenerateCustomer1(50000, 5)
	if err != nil {
		b.Fatal(err)
	}
	sample, err := aqp.BuildSample(tb, 0.5, 0, 6)
	if err != nil {
		b.Fatal(err)
	}
	engine := aqp.NewEngine(tb, sample, aqp.CachedCost)
	stmt, err := sqlparse.Parse("SELECT AVG(amount) FROM events WHERE event_date BETWEEN 30 AND 90")
	if err != nil {
		b.Fatal(err)
	}
	decs, err := query.Decompose(stmt, tb, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	snips := decs[0].Snippets
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = engine.RunToCompletion(snips)
	}
	b.ReportMetric(float64(sample.Data.Rows()), "rows/op")
}

// BenchmarkServerThroughput measures end-to-end queries/sec through the
// HTTP serving layer (internal/server) at 1, 4 and 16 in-flight sessions
// sharing one synopsis. Each session issues queries over its own
// connection; the shared System serves them against snapshot-isolated
// views with inference running on published model snapshots.
func BenchmarkServerThroughput(b *testing.B) {
	tb, err := workload.GenerateCustomer1(50000, 5)
	if err != nil {
		b.Fatal(err)
	}
	sample, err := aqp.BuildSample(tb, 0.2, 0, 6)
	if err != nil {
		b.Fatal(err)
	}
	sys := core.NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), core.Config{})
	srv := server.New(sys, server.Config{MaxInFlight: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{
		"SELECT AVG(amount) FROM events WHERE event_date BETWEEN 30 AND 90",
		"SELECT COUNT(*) FROM events WHERE event_date < 60",
		"SELECT AVG(amount) FROM events WHERE event_date >= 100",
	}
	for _, sessions := range []int{1, 4, 16} {
		b.Run("sessions="+strconv.Itoa(sessions), func(b *testing.B) {
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for s := 0; s < sessions; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					client := &http.Client{}
					session := "bench-" + strconv.Itoa(s)
					for {
						i := int(next.Add(1)) - 1
						if i >= b.N {
							return
						}
						body, _ := json.Marshal(server.QueryRequest{
							SQL: queries[i%len(queries)], Session: session,
						})
						resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status %d", resp.StatusCode)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "queries/sec")
		})
	}
}

// shardBenchTable builds a relation with one dimension column and nFuncs
// measure columns, so Record traffic spreads across nFuncs aggregate
// functions (each its own model, hashing to its own synopsis shard).
func shardBenchTable(b *testing.B, rows, nFuncs int) *storage.Table {
	b.Helper()
	defs := []storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 100},
	}
	for i := 0; i < nFuncs; i++ {
		defs = append(defs, storage.ColumnDef{
			Name: "m" + strconv.Itoa(i), Kind: storage.Numeric, Role: storage.Measure,
		})
	}
	schema := storage.MustSchema(defs)
	tb := storage.NewTable("shardbench", schema)
	rng := randx.New(3)
	vals := make([]storage.Value, len(defs))
	for r := 0; r < rows; r++ {
		vals[0] = storage.Num(rng.Uniform(0, 100))
		for i := 1; i < len(defs); i++ {
			vals[i] = storage.Num(rng.Normal(0, 1))
		}
		if err := tb.AppendRow(vals); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func shardBenchSnippet(tb *storage.Table, fn int, lo, hi float64) *query.Snippet {
	g := query.NewRegion(tb.Schema())
	xcol, _ := tb.Schema().Lookup("x")
	g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: hi})
	key := "m" + strconv.Itoa(fn)
	mcol, _ := tb.Schema().Lookup(key)
	return &query.Snippet{
		Kind:       query.AvgAgg,
		MeasureKey: key,
		Measure:    func(t *storage.Table, row int) float64 { return t.NumAt(row, mcol) },
		Region:     g,
		Table:      tb,
	}
}

// BenchmarkRecordSharded measures concurrent Record throughput against the
// sharded synopsis at 1, 4 and 16 shards. Goroutines hammer 16 distinct
// aggregate functions (the multi-tenant serving pattern); with one shard
// every Record serializes on a single writer lock, while with 4/16 shards
// writers on different functions proceed in parallel — the acceptance bar
// is ≥2× ops/sec at 4 shards vs 1 on a multicore machine. Each model sits
// at its LRU cap, so the per-op maintenance work (eviction, reindex,
// moment refresh over C_g entries) is constant across the run.
func BenchmarkRecordSharded(b *testing.B) {
	const nFuncs = 16
	tb := shardBenchTable(b, 2000, nFuncs)
	for _, shards := range []int{1, 4, 16} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			v := core.New(tb, core.Config{NumShards: shards, SynopsisCap: 192})
			// Warm every model past its cap so the steady state is uniform.
			warm := randx.New(9)
			for k := 0; k < 224; k++ {
				for fn := 0; fn < nFuncs; fn++ {
					lo := warm.Uniform(0, 90)
					v.Record(shardBenchSnippet(tb, fn, lo, lo+5),
						query.ScalarEstimate{Value: warm.Normal(0, 1), StdErr: 0.5})
				}
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				fn := int(next.Add(1)-1) % nFuncs
				rng := randx.New(int64(1000 + fn))
				for pb.Next() {
					lo := rng.Uniform(0, 90)
					v.Record(shardBenchSnippet(tb, fn, lo, lo+5),
						query.ScalarEstimate{Value: rng.Normal(0, 1), StdErr: 0.5})
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
