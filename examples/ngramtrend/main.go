// ngramtrend recreates the paper's Figure 1 demonstration: a weekly n-gram
// count series is queried over a handful of ranges, and database learning's
// model of the whole series visibly tightens after 2, 4 and 8 queries —
// including over weeks no query ever touched. Output is an ASCII rendering
// of truth vs model with 95% confidence bands.
//
//	go run ./examples/ngramtrend
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	// "Number of occurrences of certain word patterns in tweets", by week:
	// a smooth series around 30M with ±10M swings (cf. Figure 1's axis).
	tb, _, err := workload.GeneratePlanted1D(workload.Planted1DSpec{
		Rows: 50000, Ell: 25, Sigma2: 25e12, Mean: 30e6, NoiseStd: 1e6,
		Domain: 100, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	xcol, _ := tb.Schema().Lookup("x")
	v := core.New(tb, core.Config{})
	v.SetParams(query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"},
		kernel.Params{Sigma2: 25e12, Ells: map[int]float64{xcol: 25}})

	// Eight range queries, arriving in this order (cf. the shaded
	// "ranges observed by past queries" of Figure 1).
	ranges := [][2]float64{{5, 15}, {55, 65}, {25, 35}, {80, 90}, {15, 25}, {65, 75}, {40, 50}, {90, 100}}

	for i, rg := range ranges {
		exact := exactAvg(tb, rg[0], rg[1])
		v.Record(avgSnippet(tb, rg[0], rg[1]),
			query.ScalarEstimate{Value: exact * (1 + 0.002), StdErr: exact * 0.005})
		if n := i + 1; n == 2 || n == 4 || n == 8 {
			if err := v.Train(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n=== model after %d queries ===\n", n)
			render(tb, v, ranges[:n])
		}
	}
}

// render draws truth (*) and the model's mean (o) with its 95% band (.)
// over 64 columns spanning week 0..100.
func render(tb *storage.Table, v *core.Verdict, seen [][2]float64) {
	const cols = 64
	const lo, hi = 20e6, 40e6
	const height = 12
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	var meanCI float64
	for c := 0; c < cols; c++ {
		week := 100 * (float64(c) + 0.5) / cols
		truth := exactAvg(tb, week-1.5, week+1.5)
		inf := v.Infer(avgSnippet(tb, week-1.5, week+1.5),
			query.ScalarEstimate{Value: 0, StdErr: math.Inf(1)})
		meanCI += 2 * 1.96 * inf.Err
		put := func(val float64, ch byte) {
			r := int((hi - val) / (hi - lo) * float64(height))
			if r >= 0 && r < height {
				// Don't let bands overwrite the data glyphs.
				if ch == '.' && grid[r][c] != ' ' {
					return
				}
				grid[r][c] = ch
			}
		}
		put(inf.Answer+1.96*inf.Err, '.')
		put(inf.Answer-1.96*inf.Err, '.')
		put(inf.Answer, 'o')
		put(truth, '*')
	}
	for i, row := range grid {
		label := "      "
		if i == 0 {
			label = " 40M |"
		} else if i == height-1 {
			label = " 20M |"
		} else {
			label = "     |"
		}
		fmt.Println(label + string(row))
	}
	marks := []byte(strings.Repeat(" ", cols))
	for _, rg := range seen {
		for c := int(rg[0] / 100 * cols); c < int(rg[1]/100*cols) && c < cols; c++ {
			marks[c] = '='
		}
	}
	fmt.Println("     +" + strings.Repeat("-", cols))
	fmt.Println("      " + string(marks) + "  (= observed ranges)")
	fmt.Printf("      legend: * truth, o model, . 95%% band; mean CI width %.1fM\n", meanCI/float64(cols)/1e6)
}

func avgSnippet(tb *storage.Table, lo, hi float64) *query.Snippet {
	g := query.NewRegion(tb.Schema())
	xcol, _ := tb.Schema().Lookup("x")
	g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: hi})
	ycol, _ := tb.Schema().Lookup("y")
	return &query.Snippet{
		Kind: query.AvgAgg, MeasureKey: "y",
		Measure: func(t *storage.Table, row int) float64 { return t.NumAt(row, ycol) },
		Region:  g, Table: tb,
	}
}

func exactAvg(tb *storage.Table, lo, hi float64) float64 {
	xcol, _ := tb.Schema().Lookup("x")
	ycol, _ := tb.Schema().Lookup("y")
	sum, n := 0.0, 0
	for row := 0; row < tb.Rows(); row++ {
		x := tb.NumAt(row, xcol)
		if x >= lo && x <= hi {
			sum += tb.NumAt(row, ycol)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
