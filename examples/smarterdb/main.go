// smarterdb demonstrates the "becomes smarter every time" promise across
// process restarts, plus active database learning (§10's future-work
// direction): session 1 answers a workload and saves its synopsis; session
// 2 loads it and is immediately as smart as session 1 ended; an active
// campaign then spends idle time probing the model's most uncertain
// regions, making session 3 smarter than any query history alone would.
//
//	go run ./examples/smarterdb
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"repro/internal/active"
	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	tb, _, err := workload.GeneratePlanted1D(workload.Planted1DSpec{
		Rows: 60000, Ell: 18, Sigma2: 16, Mean: 100, NoiseStd: 1, Domain: 100, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	sample, err := aqp.BuildSample(tb, 0.2, 0, 78)
	if err != nil {
		log.Fatal(err)
	}
	engine := aqp.NewEngine(tb, sample, aqp.CachedCost)
	xcol, _ := tb.Schema().Lookup("x")
	ycol, _ := tb.Schema().Lookup("y")
	mkSnippet := func(g *query.Region) *query.Snippet {
		return &query.Snippet{
			Kind: query.AvgAgg, MeasureKey: "y",
			Measure: func(t *storage.Table, row int) float64 { return t.NumAt(row, ycol) },
			Region:  g, Table: tb,
		}
	}
	rangeSnippet := func(lo, hi float64) *query.Snippet {
		g := query.NewRegion(tb.Schema())
		g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: hi})
		return mkSnippet(g)
	}
	probes := active.Grid1D(tb, xcol, 6, mkSnippet)

	// --- Session 1: a workload concentrated on the left half. ---
	v1 := core.New(tb, core.Config{})
	rng := randx.New(79)
	for i := 0; i < 25; i++ {
		lo := rng.Uniform(0, 40)
		sn := rangeSnippet(lo, lo+8)
		upd := engine.RunToCompletion([]*query.Snippet{sn})
		if upd.Valid[0] {
			v1.Record(sn, upd.Estimates[0])
		}
	}
	if err := v1.Train(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: %d snippets learned; mean predictive variance %.3f\n",
		v1.SnippetCount(), active.MeanUncertainty(v1, probes))

	// Persist the synopsis — the "database" shuts down.
	var disk bytes.Buffer
	if err := v1.Save(&disk); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("           synopsis saved (%d bytes of JSON)\n\n", disk.Len())

	// --- Session 2: restart, load, and answer immediately. ---
	v2, err := core.Load(bytes.NewReader(disk.Bytes()), tb, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: loaded %d snippets; mean predictive variance %.3f (identical)\n",
		v2.SnippetCount(), active.MeanUncertainty(v2, probes))
	demo := rangeSnippet(20, 30)
	raw := engineEstimate(engine, demo, 2) // a cheap two-batch answer
	inf := v2.Infer(demo, raw)
	exact := engine.Exact(demo)
	fmt.Printf("           AVG(y) over x∈[20,30]: improved %.2f ± %.2f (exact %.2f, raw ± %.2f)\n\n",
		inf.Answer, 1.96*inf.Err, exact, 1.96*raw.StdErr)

	// --- Active learning: probe the uncovered right half during idle time. ---
	cands := active.Grid1D(tb, xcol, 12, mkSnippet)
	steps, err := active.Campaign(v2, engine, cands, active.Config{Rounds: 8, Batches: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("active campaign: %d probes executed, chosen by predictive variance:\n", len(steps))
	for _, s := range steps {
		rg := s.Snippet.Region.NumRangeOf(xcol, tb)
		fmt.Printf("  probed x∈[%5.1f, %5.1f]  (γ²=%6.2f before, sim cost %v)\n",
			rg.Lo, rg.Hi, s.Gamma2Before, s.SimTime.Round(1e7))
	}
	fmt.Printf("mean predictive variance after campaign: %.3f\n\n", active.MeanUncertainty(v2, probes))

	// --- Session 3: a query over a never-queried region now benefits. ---
	far := rangeSnippet(70, 80)
	rawFar := engineEstimate(engine, far, 2)
	before := v1.Infer(far, rawFar)
	after := v2.Infer(far, rawFar)
	exactFar := engine.Exact(far)
	fmt.Println("query over x∈[70,80] (never asked by any user):")
	fmt.Printf("  without active learning: %.2f ± %.2f (|err| %.2f)\n",
		before.Answer, 1.96*before.Err, math.Abs(before.Answer-exactFar))
	fmt.Printf("  with    active learning: %.2f ± %.2f (|err| %.2f)\n",
		after.Answer, 1.96*after.Err, math.Abs(after.Answer-exactFar))
}

// engineEstimate returns a deliberately coarse raw answer (two batches).
func engineEstimate(engine *aqp.Engine, sn *query.Snippet, batches int) query.ScalarEstimate {
	var upd aqp.BatchUpdate
	engine.OnlineAggregate([]*query.Snippet{sn}, func(u aqp.BatchUpdate) bool {
		upd = u
		return u.Batch < batches-1
	})
	return aqp.Sanitize(upd.Estimates[0])
}
