// onlineagg demonstrates deployment scenario 1 (§7): an online-aggregation
// engine refines its answer over growing sample prefixes, and the user
// stops as soon as the error bound meets a target. With database learning,
// the target is met after far fewer rows — the paper's speedup mechanism,
// live. The refinement loop is the real progressive pipeline
// (aqp.ProgressiveScan over a doubling aqp.PrefixSchedule) that
// verdict-server's /query/stream endpoint drives — not a simulation — so
// every printed increment is replayable bit-for-bit via View.EvalPrefix.
//
//	go run ./examples/onlineagg
package main

import (
	"fmt"
	"log"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func main() {
	table, err := workload.GenerateCustomer1(120000, 5)
	if err != nil {
		log.Fatal(err)
	}
	sample, err := aqp.BuildSample(table, 0.25, 0, 6)
	if err != nil {
		log.Fatal(err)
	}
	// Cost model scaled so a full sample scan simulates ~6 s (cached tier).
	cost := aqp.CachedCost.Scaled(6 * aqp.CachedCost.RowsPerSecond / float64(sample.Data.Rows()))
	engine := aqp.NewEngine(table, sample, cost)
	v := core.New(table, core.Config{})

	// Warm up the synopsis with 60 past queries, then train offline.
	spec := workload.DefaultCustomer1TraceSpec()
	spec.Queries = 200
	spec.Seed = 9
	warm := 0
	for _, e := range workload.GenerateCustomer1Trace(spec) {
		if !e.Supported || warm >= 60 {
			continue
		}
		snips, err := decompose(engine, e.SQL)
		if err != nil {
			continue
		}
		upd := engine.RunToCompletion(snips)
		for i, sn := range snips {
			if upd.Valid[i] {
				v.Record(sn, upd.Estimates[i])
			}
		}
		warm++
	}
	if err := v.Train(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synopsis warmed with %d queries (%d snippets)\n\n", warm, v.SnippetCount())

	// The new query, refined online against a 1% relative error target.
	sql := "SELECT AVG(amount) FROM events WHERE event_date BETWEEN 120 AND 180"
	const target = 0.01
	fmt.Println(sql)
	fmt.Printf("stopping when the 95%% bound falls below ±%.1f%%\n\n", target*100)

	snips, err := decompose(engine, sql)
	if err != nil {
		log.Fatal(err)
	}
	sn := snips[0]
	exact := engine.Exact(sn)
	alpha, _ := mathx.ConfidenceMultiplier(0.95)

	fmt.Println("sample rows  sim-time   raw answer (±bound)        improved answer (±bound)")
	var rawDone, impDone bool
	ps := engine.Acquire().Progressive(snips)
	for _, prefix := range aqp.PrefixSchedule(ps.Total(), 1024) {
		u := ps.Step(prefix)
		if !u.Valid[0] {
			continue
		}
		raw := aqp.Sanitize(u.Estimates[0])
		inf := v.Infer(sn, raw)
		rawRel := alpha * raw.StdErr / exact
		impRel := alpha * inf.Err / exact
		note := ""
		if !impDone && impRel <= target {
			impDone = true
			note += "  <- Verdict meets target"
		}
		if !rawDone && rawRel <= target {
			rawDone = true
			note += "  <- NoLearn meets target"
		}
		fmt.Printf("%11d   %8s  %9.3f ±%5.2f%%         %9.3f ±%5.2f%%%s\n",
			u.Rows, u.SimTime.Round(1e7), raw.Value, rawRel*100, inf.Answer, impRel*100, note)
		if rawDone && impDone {
			break
		}
	}
	fmt.Printf("\nexact answer: %.3f\n", exact)
	if impDone && !rawDone {
		fmt.Println("NoLearn never met the target within the sample — Verdict did.")
	}

	// A dropped stream is not a restart: re-entering the scan at the last
	// received cursor folds the consumed prefix once (ProgressiveFrom), and
	// every later increment is bit-identical to the uninterrupted stream's
	// — exactly how /query/stream resumes a POSTed cursor.
	view := engine.Acquire()
	sched := aqp.PrefixSchedule(view.SampleRows, 1024)
	const cut = 2 // increments received before the simulated disconnect
	full := view.Progressive(snips)
	resumed := view.ProgressiveFrom(snips, sched[cut-1], cut-1, 0)
	identical := true
	for i, prefix := range sched {
		a := full.Step(prefix)
		if i < cut {
			continue
		}
		b := resumed.Step(prefix)
		if a.Seq != b.Seq || a.Rows != b.Rows || a.Estimates[0] != b.Estimates[0] {
			identical = false
		}
	}
	fmt.Printf("\nresume check: stream cut after %d increments, re-entered at row %d — continuation bit-identical: %v\n",
		cut, sched[cut-1], identical)
}

func decompose(engine *aqp.Engine, sql string) ([]*query.Snippet, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sup := query.Check(stmt); !sup.OK {
		return nil, fmt.Errorf("unsupported: %v", sup.Reasons)
	}
	region, err := query.BindRegion(stmt.Where, engine.Base())
	if err != nil {
		return nil, err
	}
	var groupCols []int
	for _, g := range stmt.GroupBy {
		col, ok := engine.Base().Schema().Lookup(g.Name)
		if !ok {
			return nil, fmt.Errorf("unknown column %s", g.Name)
		}
		groupCols = append(groupCols, col)
	}
	groups, err := engine.GroupRows(groupCols, region)
	if err != nil {
		return nil, err
	}
	decs, err := query.Decompose(stmt, engine.Base(), groups, 0)
	if err != nil {
		return nil, err
	}
	var out []*query.Snippet
	for _, d := range decs {
		out = append(out, d.Snippets...)
	}
	return out, nil
}
