// Quickstart: build a relation, sample it, and answer SQL approximately —
// then watch Verdict's database learning tighten the answers as the
// workload proceeds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/storage"
)

func main() {
	// 1. A denormalized sales relation: week and region are dimensions,
	// revenue is the measure. Revenue grows smoothly with the week — the
	// kind of inter-tuple correlation database learning exploits.
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 52},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "revenue", Kind: storage.Numeric, Role: storage.Measure},
	})
	table := storage.NewTable("sales", schema)
	rng := randx.New(2024)
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < 200000; i++ {
		week := rng.Uniform(0, 52)
		revenue := 1000 + 40*week + rng.Normal(0, 120)
		if err := table.AppendRow([]storage.Value{
			storage.Num(week),
			storage.Str(regions[rng.Intn(len(regions))]),
			storage.Num(revenue),
		}); err != nil {
			log.Fatal(err)
		}
	}

	// 2. An offline 5% uniform sample drives the approximate engine.
	sample, err := aqp.BuildSample(table, 0.05, 0, 7)
	if err != nil {
		log.Fatal(err)
	}
	sys := core.NewSystem(aqp.NewEngine(table, sample, aqp.CachedCost), core.Config{})

	// 3. Run a small workload. Each answer is recorded in the query
	// synopsis; the system gets smarter with every query.
	warmup := []string{
		"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 0 AND 10",
		"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 8 AND 20",
		"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 18 AND 30",
		"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 28 AND 40",
		"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 38 AND 52",
		"SELECT region, COUNT(*) FROM sales GROUP BY region",
	}
	for _, sql := range warmup {
		if _, err := sys.Execute(sql); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Learn correlation parameters from the synopsis (Algorithm 1).
	if err := sys.Verdict().Train(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d past snippets\n\n", sys.Verdict().SnippetCount())

	// 5. A new query over a range nobody asked about before: the improved
	// answer combines the fresh sample estimate with the learned model.
	res, err := sys.ExecuteWithExact("SELECT AVG(revenue) FROM sales WHERE week BETWEEN 22 AND 26")
	if err != nil {
		log.Fatal(err)
	}
	cell := res.Rows[0].Cells[0]
	fmt.Println("SELECT AVG(revenue) FROM sales WHERE week BETWEEN 22 AND 26")
	fmt.Printf("  exact answer:    %10.2f\n", cell.Exact)
	fmt.Printf("  raw (AQP only):  %10.2f ± %.2f\n", cell.Raw.Value, 1.96*cell.Raw.StdErr)
	fmt.Printf("  improved:        %10.2f ± %.2f (model used: %v)\n",
		cell.Improved.Value, 1.96*cell.Improved.StdErr, cell.UsedModel)
	fmt.Printf("  error reduction: raw %.3f%% -> improved %.3f%%\n",
		100*abs(cell.Raw.Value-cell.Exact)/cell.Exact,
		100*abs(cell.Improved.Value-cell.Exact)/cell.Exact)
	fmt.Printf("  simulated AQP latency %v, Verdict overhead %v\n",
		res.SimTime.Round(1e6), res.Overhead.Round(1e3))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
