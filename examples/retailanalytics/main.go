// retailanalytics runs a TPC-H-like decision-support workload through the
// full Verdict pipeline: the fourteen supported query templates (of the
// paper's Table 3 classification) are instantiated repeatedly, the first
// half training the model and the second half measuring how much database
// learning tightens the answers — per template.
//
//	go run ./examples/retailanalytics
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/workload"
)

func main() {
	table, err := workload.GenerateTPCH(150000, 3)
	if err != nil {
		log.Fatal(err)
	}
	sample, err := aqp.BuildSample(table, 0.2, 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	sys := core.NewSystem(aqp.NewEngine(table, sample, aqp.CachedCost), core.Config{})

	rng := randx.New(5)
	var templates []workload.TPCHTemplate
	for _, tpl := range workload.TPCHTemplates() {
		if tpl.Supported {
			templates = append(templates, tpl)
		}
	}
	fmt.Printf("TPC-H-like relation: %d rows; %d supported templates\n\n",
		table.Rows(), len(templates))

	// Training pass: 4 instantiations of every template.
	for round := 0; round < 4; round++ {
		for _, tpl := range templates {
			if _, err := sys.Execute(workload.InstantiateTPCH(tpl, rng)); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sys.Verdict().Train(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d snippets in the synopsis (~%.0f KB)\n\n",
		sys.Verdict().SnippetCount(), float64(sys.Verdict().FootprintBytes())/1024)

	// Measurement pass: fresh instantiations, comparing raw vs improved
	// actual errors against exact answers.
	type agg struct {
		raw, imp float64
		n        int
	}
	perTemplate := map[int]*agg{}
	for round := 0; round < 2; round++ {
		for _, tpl := range templates {
			res, err := sys.ExecuteWithExact(workload.InstantiateTPCH(tpl, rng))
			if err != nil {
				log.Fatal(err)
			}
			a := perTemplate[tpl.ID]
			if a == nil {
				a = &agg{}
				perTemplate[tpl.ID] = a
			}
			for _, row := range res.Rows {
				for _, c := range row.Cells {
					den := math.Abs(c.Exact)
					if den < 1e-6 {
						continue
					}
					a.raw += math.Abs(c.Raw.Value-c.Exact) / den
					a.imp += math.Abs(c.Improved.Value-c.Exact) / den
					a.n++
				}
			}
		}
	}

	ids := make([]int, 0, len(perTemplate))
	for id := range perTemplate {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Println("template   raw err   improved err   reduction")
	var totRaw, totImp float64
	for _, id := range ids {
		a := perTemplate[id]
		if a.n == 0 {
			continue
		}
		raw, imp := a.raw/float64(a.n), a.imp/float64(a.n)
		totRaw += raw
		totImp += imp
		fmt.Printf("   Q%-2d     %6.2f%%      %6.2f%%      %5.1f%%\n",
			id, raw*100, imp*100, reduction(raw, imp)*100)
	}
	fmt.Printf("\noverall error reduction: %.1f%%\n",
		reduction(totRaw, totImp)*100)
}

func reduction(base, improved float64) float64 {
	if base <= 0 {
		return 0
	}
	if improved > base {
		return 0
	}
	return 1 - improved/base
}
