package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
)

// runClient is the -connect mode: the shell forwards every command to a
// running verdict-server, so many shells share one synopsis and each
// benefits from what the others taught it.
func runClient(hostport string) {
	base := "http://" + hostport
	hc := &http.Client{Timeout: 60 * time.Second}

	var st server.StatsResponse
	if err := getJSON(hc, base+"/stats", &st); err != nil {
		fmt.Fprintf(os.Stderr, "cannot reach verdict-server at %s: %v\n", hostport, err)
		os.Exit(1)
	}
	session := fmt.Sprintf("cli-%d", os.Getpid())
	fmt.Printf("verdict-cli — connected to %s (session %s)\n", hostport, session)
	fmt.Printf("table %s: %d rows (%d sampled), epoch %d\n",
		st.Table.Name, st.Table.BaseRows, st.Table.SampleRows, st.Table.Epoch)
	fmt.Printf("columns: %s\n", strings.Join(st.Table.Columns, ", "))
	fmt.Println(`type SQL (single line; streams progressive increments), or \oneshot SQL, \exact SQL, \subscribe [ci=X] [rel=Y] SQL, \train, \stats, \append N, \quit`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("verdict> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\train`:
			var tr server.TrainResponse
			if err := postJSON(hc, base+"/train", struct{}{}, &tr); err != nil {
				fmt.Println("training failed:", err)
			} else {
				fmt.Printf("trained on %d snippets across %d aggregate functions\n", tr.Snippets, tr.Functions)
			}
		case line == `\stats`:
			var st server.StatsResponse
			if err := getJSON(hc, base+"/stats", &st); err != nil {
				fmt.Println("stats failed:", err)
				continue
			}
			printServerStats(st)
		case strings.HasPrefix(line, `\append`):
			n, err := parseAppendCount(line)
			if err != nil {
				fmt.Println(err)
				continue
			}
			var ar server.AppendResponse
			req := server.AppendRequest{Session: session, Generate: n}
			if err := postJSON(hc, base+"/append", req, &ar); err != nil {
				fmt.Println("append failed:", err)
				continue
			}
			fmt.Printf("appended %d rows (%d sampled); base now %d rows, sample %d, epoch %d\n",
				ar.Appended, ar.Sampled, ar.BaseRows, ar.SampleRows, ar.Epoch)
		case strings.HasPrefix(line, `\save `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
			var sr server.SnapshotResponse
			if err := postJSON(hc, base+"/save", server.PathRequest{Path: path}, &sr); err != nil {
				fmt.Println("save failed:", err)
			} else {
				fmt.Printf("synopsis saved server-side to %s (%d snippets)\n", sr.Path, sr.Snippets)
			}
		case strings.HasPrefix(line, `\load `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\load `))
			var sr server.SnapshotResponse
			if err := postJSON(hc, base+"/load", server.PathRequest{Path: path}, &sr); err != nil {
				fmt.Println("load failed:", err)
			} else {
				fmt.Printf("synopsis loaded server-side: %d snippets\n", sr.Snippets)
			}
		case strings.HasPrefix(line, `\subscribe `):
			remoteSubscribe(base, session, strings.TrimPrefix(line, `\subscribe `))
		case strings.HasPrefix(line, `\exact `):
			remoteQuery(hc, base, session, strings.TrimPrefix(line, `\exact `), true)
		case strings.HasPrefix(line, `\oneshot `):
			remoteQuery(hc, base, session, strings.TrimPrefix(line, `\oneshot `), false)
		default:
			remoteStream(hc, base, session, line)
		}
	}
}

// remoteStream drives /query/stream: one progress line per increment as the
// estimate converges, then the full answer at the final chunk. Servers
// without the endpoint fall back to the one-shot /query. A transport error
// mid-stream is retried once from the last received chunk's cursor — the
// server folds the already-consumed prefix and continues bit-identically —
// before giving up.
func remoteStream(hc *http.Client, base, session, sql string) {
	var last server.StreamChunk
	increments := 0
	for attempt := 0; ; attempt++ {
		req := server.StreamRequest{SQL: sql, Session: session}
		if attempt > 0 {
			req.Cursor = last.Cursor
		}
		done, err := streamOnce(hc, base, req, attempt == 0, &last, &increments)
		if done {
			return
		}
		if err == nil {
			break
		}
		if last.Final || last.StopReason != "" {
			// The terminal chunk already arrived; the transport error only
			// clipped the clean EOF. Render the answer we hold — resuming a
			// completed stream would be rejected (and waste a rescan).
			break
		}
		// One resume from the last cursor; anything further is fatal.
		if attempt == 0 && last.Cursor != nil {
			fmt.Printf("  stream interrupted (%v); reconnecting with cursor…\n", err)
			continue
		}
		fmt.Println("stream error:", err)
		return
	}
	if increments == 0 {
		fmt.Println("stream ended without an answer")
		return
	}
	if last.StopReason == "target" {
		fmt.Printf("  target CI reached after %d/%d sample rows\n", last.RowsSeen, last.SampleRows)
	}
	printRows(last.Rows, false)
	fmt.Printf("  epoch %d gen %d (%d base rows), %d increments, simulated AQP latency %.1fms, verdict overhead %.0fµs\n",
		last.Epoch, last.SampleGen, last.BaseRows, increments, last.SimTimeMS, last.OverheadUS)
}

// streamOnce performs one /query/stream attempt (fresh or cursor-resumed),
// accumulating chunks into *last / *increments. done=true means the caller
// should return immediately (fallback taken, HTTP error printed, or a
// terminal condition rendered); err non-nil with done=false is a transport
// error eligible for a cursor retry.
func streamOnce(hc *http.Client, base string, req server.StreamRequest, allowFallback bool, last *server.StreamChunk, increments *int) (done bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Println("error:", err)
		return true, nil
	}
	resp, err := hc.Post(base+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		if req.Cursor != nil {
			return false, err // connect failure on resume: report as stream error
		}
		fmt.Println("error:", err)
		return true, nil
	}
	defer resp.Body.Close()
	if allowFallback && (resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed) {
		io.Copy(io.Discard, resp.Body)
		remoteQuery(hc, base, req.Session, req.SQL, false)
		return true, nil
	}
	if resp.StatusCode == http.StatusGone {
		// The cursor fell behind the replay horizon; the only clean move is
		// a fresh stream, which the user can reissue.
		fmt.Println("error:", decodeResponse(resp, nil))
		return true, nil
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Println("error:", decodeResponse(resp, nil))
		return true, nil
	}
	if req.Cursor != nil {
		fmt.Printf("  resumed at row %d\n", req.Cursor.RowsSeen)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var c server.StreamChunk
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			// A connection that dies mid-chunk can surface as a clean EOF
			// whose final partial line fails to parse; that is a transport
			// failure, not a server answer — eligible for a cursor resume.
			return false, fmt.Errorf("truncated chunk: %w", err)
		}
		if !c.Supported {
			fmt.Printf("unsupported query (bypassing learning): %s\n", strings.Join(c.Reasons, "; "))
			return true, nil
		}
		if c.Error != "" {
			fmt.Println("server error mid-stream:", c.Error)
			return true, nil
		}
		*last = c
		*increments++
		if !c.Final && c.StopReason == "" {
			fmt.Printf("  … %3.0f%%  %9d/%d sample rows   %.4g ± %.3g (raw ± %.3g)\n",
				100*float64(c.RowsSeen)/float64(c.SampleRows), c.RowsSeen, c.SampleRows,
				c.Estimate, c.CI, c.RawCI)
		}
	}
	return false, sc.Err()
}

// remoteSubscribe drives POST /subscribe: register the SQL once, then
// render every pushed update live until the server closes the stream
// (drain) or the connection drops. Optional leading ci=<abs> and
// rel=<frac> tokens set the push thresholds (both absent: every change
// pushes). The subscription uses its own timeout-free client — the shared
// one would kill the stream after 60 s.
func remoteSubscribe(base, session, args string) {
	req := server.SubscribeRequest{Session: session}
	toks := strings.Fields(args)
	i := 0
	for ; i < len(toks); i++ {
		if v, ok := strings.CutPrefix(toks[i], "ci="); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fmt.Println("bad ci= value:", err)
				return
			}
			req.DeltaCI = f
		} else if v, ok := strings.CutPrefix(toks[i], "rel="); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fmt.Println("bad rel= value:", err)
				return
			}
			req.DeltaRel = f
		} else {
			break
		}
	}
	req.SQL = strings.Join(toks[i:], " ")
	if req.SQL == "" {
		fmt.Println(`usage: \subscribe [ci=X] [rel=Y] SELECT ...`)
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	resp, err := (&http.Client{}).Post(base+"/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Println("error:", decodeResponse(resp, nil))
		return
	}
	fmt.Println("  subscribed — updates push on append/rebuild/train (server drain ends the stream)")
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var c server.StreamChunk
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			fmt.Println("truncated chunk:", err)
			return
		}
		if c.StopReason != "" {
			fmt.Printf("  subscription closed by server (%s)\n", c.StopReason)
			return
		}
		if len(c.Rows) > 1 || (len(c.Rows) == 1 && len(c.Rows[0].Group) > 0) {
			// Grouped standing query: one line per group row.
			trunc := ""
			if c.GroupsTruncated {
				trunc = ", truncated"
			}
			fmt.Printf("  [%s #%d, gen %d, %d base rows, %d groups%s]\n",
				c.PushReason, c.Seq, c.SampleGen, c.BaseRows, len(c.Rows), trunc)
			printRows(c.Rows, false)
			continue
		}
		fmt.Printf("  [%s #%d, gen %d, %d base rows] %.6g ± %.3g\n",
			c.PushReason, c.Seq, c.SampleGen, c.BaseRows, c.Estimate, c.CI)
	}
	if err := sc.Err(); err != nil {
		fmt.Println("subscription stream error:", err)
	} else {
		fmt.Println("  subscription stream ended")
	}
}

func remoteQuery(hc *http.Client, base, session, sql string, exact bool) {
	var qr server.QueryResponse
	req := server.QueryRequest{SQL: sql, Session: session, Exact: exact}
	if err := postJSON(hc, base+"/query", req, &qr); err != nil {
		fmt.Println("error:", err)
		return
	}
	if !qr.Supported {
		fmt.Printf("unsupported query (bypassing learning): %s\n", strings.Join(qr.Reasons, "; "))
		return
	}
	printRows(qr.Rows, exact)
	fmt.Printf("  epoch %d (%d base rows), simulated AQP latency %.1fms, verdict overhead %.0fµs\n",
		qr.Epoch, qr.BaseRows, qr.SimTimeMS, qr.OverheadUS)
}

func printRows(rows []server.Row, exact bool) {
	for _, row := range rows {
		var parts []string
		for _, g := range row.Group {
			if g.Str != "" {
				parts = append(parts, g.Str)
			} else {
				parts = append(parts, fmt.Sprintf("%g", g.Num))
			}
		}
		for _, c := range row.Cells {
			cell := fmt.Sprintf("%s = %.4g ± %.3g", c.Agg, c.Value, c.ErrBound)
			if c.UsedModel {
				cell += " (learned)"
			}
			if exact {
				cell += fmt.Sprintf(" [exact %.4g, raw %.4g]", c.Exact, c.RawValue)
			}
			parts = append(parts, cell)
		}
		fmt.Println("  " + strings.Join(parts, " | "))
	}
}

func printServerStats(st server.StatsResponse) {
	fmt.Printf("table %s: %d rows (%d sampled), epoch %d\n",
		st.Table.Name, st.Table.BaseRows, st.Table.SampleRows, st.Table.Epoch)
	fmt.Printf("queries: %d total, %d aggregate, %d supported; snippets: %d; improved: %d\n",
		st.System.Total, st.System.Aggregate, st.System.Supported, st.System.Snippets, st.System.Improved)
	fmt.Printf("appends: %d batches, %d rows\n", st.System.Appends, st.System.AppendRows)
	fmt.Printf("synopsis: %d snippets across %d functions, ~%.1f KB\n",
		st.Synopsis.Snippets, st.Synopsis.Functions, float64(st.Synopsis.Footprint)/1024)
	fmt.Printf("server: %d sessions, %d served, %d shed, up %.0fs\n",
		st.Server.Sessions, st.Server.Served, st.Server.Rejected, float64(st.Server.UptimeMS)/1000)
	if m := st.Metrics; m != nil {
		fmt.Printf("metrics: %d requests, latency p50=%.2fms p95=%.2fms p99=%.2fms, %d shed (full catalog: GET /metrics)\n",
			m.TotalRequests, m.RequestP50MS, m.RequestP95MS, m.RequestP99MS, m.Shed)
	}
	if st.Sample.NumPartitions > 0 {
		col := st.Sample.StratumColumn
		if col == "" {
			col = "(round-robin)"
		}
		fmt.Printf("sample layout: %d partitions, stratum column %s\n", st.Sample.NumPartitions, col)
		for _, p := range st.Sample.Partitions {
			fmt.Printf("  partition %d: %d rows, %d strata, gen %d, zone selectivity %.3f\n",
				p.Partition, p.Rows, p.Strata, p.Generation, p.ZoneSelectivity)
		}
	}
	for _, s := range st.Sessions {
		fmt.Printf("  session %-12s queries=%-5d appends=%d\n", s.ID, s.Queries, s.Appends)
	}
}

func postJSON(hc *http.Client, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	return decodeResponse(r, resp)
}

func getJSON(hc *http.Client, url string, resp any) error {
	r, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	return decodeResponse(r, resp)
}

func decodeResponse(r *http.Response, resp any) error {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return err
	}
	if r.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s (HTTP %d)", e.Error, r.StatusCode)
		}
		return fmt.Errorf("HTTP %d: %s", r.StatusCode, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, resp)
}
