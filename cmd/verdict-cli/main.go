// Command verdict-cli is an interactive SQL shell over a generated dataset,
// answering queries through the full Verdict pipeline: approximate answers
// from the sampling engine, improved by database learning, with 95%
// confidence intervals.
//
// Usage:
//
//	verdict-cli -dataset customer1 -rows 50000
//	verdict-cli -dataset tpch -rows 100000 -fraction 0.2
//	verdict-cli -connect localhost:8765        # drive a running verdict-server
//
// Meta commands inside the shell:
//
//	\train       learn correlation parameters from the synopsis
//	\stats       show synopsis and workload statistics
//	\exact SQL   also compute the exact answer for comparison
//	\append N    stream N freshly generated rows into the served relation
//	\save PATH   persist the synopsis and learned parameters
//	\load PATH   restore a synopsis saved against the same dataset+seed
//	\quit        exit
//
// In -connect mode every command is forwarded to the server, so many shells
// can share (and jointly improve) one synopsis.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		dataset  = flag.String("dataset", "customer1", "customer1 | tpch | synthetic")
		rows     = flag.Int("rows", 50000, "base relation rows")
		fraction = flag.Float64("fraction", 0.2, "offline sample fraction")
		seed     = flag.Int64("seed", 1, "random seed")
		connect  = flag.String("connect", "", "host:port of a running verdict-server (client mode)")
	)
	flag.Parse()

	if *connect != "" {
		runClient(*connect)
		return
	}

	table, err := buildTable(*dataset, *rows, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sample, err := aqp.BuildSample(table, *fraction, 0, *seed+1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys := core.NewSystem(aqp.NewEngine(table, sample, aqp.CachedCost), core.Config{})

	fmt.Printf("verdict-cli — %s (%d rows, %.0f%% sample). Table: %s\n",
		*dataset, table.Rows(), *fraction*100, table.Name())
	fmt.Printf("columns: %s\n", strings.Join(table.Schema().Names(), ", "))
	fmt.Println(`type SQL (single line), or \train, \stats, \append N, \quit`)

	appendSeed := *seed + 1000
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("verdict> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\train`:
			if err := sys.Verdict().Train(); err != nil {
				fmt.Println("training failed:", err)
			} else {
				fmt.Printf("trained on %d snippets across %d aggregate functions\n",
					sys.Verdict().SnippetCount(), len(sys.Verdict().FuncIDs()))
			}
		case line == `\stats`:
			st := sys.StatsSnapshot()
			fmt.Printf("queries: %d total, %d aggregate, %d supported; snippets: %d; improved: %d\n",
				st.Total, st.Aggregate, st.Supported, st.Snippets, st.Improved)
			fmt.Printf("appends: %d batches, %d rows; base relation now %d rows\n",
				st.Appends, st.AppendRows, sys.Engine().Acquire().BaseRows)
			fmt.Printf("synopsis: %d snippets, ~%.1f KB\n",
				sys.Verdict().SnippetCount(), float64(sys.Verdict().FootprintBytes())/1024)
		case strings.HasPrefix(line, `\append`):
			n, err := parseAppendCount(line)
			if err != nil {
				fmt.Println(err)
				continue
			}
			appendSeed++
			batch, err := buildTable(*dataset, n, appendSeed)
			if err != nil {
				fmt.Println("generating batch:", err)
				continue
			}
			sampled, err := sys.Append(batch)
			if err != nil {
				fmt.Println("append failed:", err)
				continue
			}
			view := sys.Engine().Acquire()
			fmt.Printf("appended %d rows (%d sampled); base now %d rows, sample %d, epoch %d\n",
				n, sampled, view.BaseRows, view.SampleRows, view.Epoch)
		case strings.HasPrefix(line, `\exact `):
			runQuery(sys, strings.TrimPrefix(line, `\exact `), true)
		case strings.HasPrefix(line, `\save `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
			if err := saveSynopsis(sys, path); err != nil {
				fmt.Println("save failed:", err)
			} else {
				fmt.Println("synopsis saved to", path)
			}
		case strings.HasPrefix(line, `\load `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\load `))
			if err := loadSynopsis(sys, path); err != nil {
				fmt.Println("load failed:", err)
			} else {
				fmt.Printf("synopsis loaded: %d snippets\n", sys.Verdict().SnippetCount())
			}
		default:
			runQuery(sys, line, false)
		}
	}
}

// parseAppendCount parses "\append N" (default 1000 rows).
func parseAppendCount(line string) (int, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, `\append`))
	if rest == "" {
		return 1000, nil
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf(`usage: \append N  (N > 0 rows to generate and stream in)`)
	}
	return n, nil
}

func saveSynopsis(sys *core.System, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sys.Verdict().Save(f)
}

// loadSynopsis restores the synopsis in place; the engine and sample are
// reused and in-flight state is unaffected.
func loadSynopsis(sys *core.System, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sys.LoadSynopsis(f)
}

func buildTable(dataset string, rows int, seed int64) (*storage.Table, error) {
	switch dataset {
	case "customer1":
		return workload.GenerateCustomer1(rows, seed)
	case "tpch":
		return workload.GenerateTPCH(rows, seed)
	case "synthetic":
		spec := workload.DefaultSyntheticSpec()
		spec.Rows = rows
		spec.Seed = seed
		syn, err := workload.GenerateSynthetic(spec)
		if err != nil {
			return nil, err
		}
		return syn.Table, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (customer1|tpch|synthetic)", dataset)
	}
}

func runQuery(sys *core.System, sql string, exact bool) {
	var (
		res *core.Result
		err error
	)
	if exact {
		res, err = sys.ExecuteWithExact(sql)
	} else {
		res, err = sys.Execute(sql)
	}
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if !res.Supported {
		fmt.Printf("unsupported query (bypassing learning): %s\n", strings.Join(res.Reasons, "; "))
		return
	}
	alpha, _ := mathx.ConfidenceMultiplier(0.95)
	for _, row := range res.Rows {
		var parts []string
		for _, g := range row.Group {
			if g.Str != "" {
				parts = append(parts, g.Str)
			} else {
				parts = append(parts, fmt.Sprintf("%g", g.Num))
			}
		}
		for _, c := range row.Cells {
			cell := fmt.Sprintf("%s = %.4g ± %.3g", c.Agg, c.Improved.Value, alpha*c.Improved.StdErr)
			if c.UsedModel {
				cell += " (learned)"
			}
			if exact {
				cell += fmt.Sprintf(" [exact %.4g, raw %.4g ± %.3g]",
					c.Exact, c.Raw.Value, alpha*c.Raw.StdErr)
			}
			parts = append(parts, cell)
		}
		fmt.Println("  " + strings.Join(parts, " | "))
	}
	fmt.Printf("  simulated AQP latency %s, verdict overhead %s\n",
		res.SimTime.Round(1e6), res.Overhead.Round(1e3))
}
