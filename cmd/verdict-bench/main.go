// Command verdict-bench runs the paper-reproduction experiments and prints
// their report tables — one per table/figure of the evaluation section.
//
// Usage:
//
//	verdict-bench -list
//	verdict-bench -exp table4
//	verdict-bench -exp all -scale full -seed 3
//	verdict-bench -exp groupedbench -json BENCH_grouped.json
//
// -json writes the machine-readable metrics (ns/op per benchmark case) of
// every executed experiment that records them, as a single JSON object
// keyed experiment id → case → value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale    = flag.String("scale", "small", "small | full")
		seed     = flag.Int64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonPath = flag.String("json", "", "write per-case metrics (ns/op) of the executed experiments to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	opts := experiments.Options{Scale: experiments.Small, Seed: *seed}
	switch *scale {
	case "small":
	case "full":
		opts.Scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (small|full)\n", *scale)
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	failed := false
	metrics := map[string]map[string]float64{}
	for _, id := range ids {
		runner, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
		if len(rep.Metrics) > 0 {
			metrics[rep.ID] = rep.Metrics
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(metrics, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal metrics: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *jsonPath)
	}
	if failed {
		os.Exit(1)
	}
}
