// Command verdict-bench runs the paper-reproduction experiments and prints
// their report tables — one per table/figure of the evaluation section.
//
// Usage:
//
//	verdict-bench -list
//	verdict-bench -exp table4
//	verdict-bench -exp all -scale full -seed 3
//	verdict-bench -exp groupedbench -json BENCH_grouped.json
//	verdict-bench -exp scanbench,groupedbench,progressivebench -json-dir bench-out
//
// -json writes the machine-readable metrics (ns/op per benchmark case) of
// every executed experiment that records them, as a single JSON object
// keyed experiment id → case → value. -json-dir instead writes one
// BENCH_<name>.json per executed experiment (scanbench → BENCH_scan.json),
// the per-experiment artifacts CI uploads as the perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids (see -list) or 'all'")
		scale    = flag.String("scale", "small", "small | full")
		seed     = flag.Int64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonPath = flag.String("json", "", "write per-case metrics (ns/op) of the executed experiments to this file")
		jsonDir  = flag.String("json-dir", "", "write one BENCH_<name>.json per executed experiment into this directory")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	opts := experiments.Options{Scale: experiments.Small, Seed: *seed}
	switch *scale {
	case "small":
	case "full":
		opts.Scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (small|full)\n", *scale)
		os.Exit(2)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.IDs()
	}
	failed := false
	metrics := map[string]map[string]float64{}
	for _, id := range ids {
		runner, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
		if len(rep.Metrics) > 0 {
			metrics[rep.ID] = rep.Metrics
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, metrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *jsonPath)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mkdir %s: %v\n", *jsonDir, err)
			os.Exit(1)
		}
		for id, m := range metrics {
			path := filepath.Join(*jsonDir, benchArtifactName(id))
			if err := writeJSON(path, m); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("metrics written to %s\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// benchArtifactName maps an experiment id to its trajectory artifact:
// scanbench → BENCH_scan.json, groupedbench → BENCH_grouped.json,
// progressivebench → BENCH_progressive.json; ids without the suffix keep
// their full name.
func benchArtifactName(id string) string {
	name := strings.TrimSuffix(id, "bench")
	if name == "" {
		name = id
	}
	return "BENCH_" + name + ".json"
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal metrics: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}
