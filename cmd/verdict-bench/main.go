// Command verdict-bench runs the paper-reproduction experiments and prints
// their report tables — one per table/figure of the evaluation section.
//
// Usage:
//
//	verdict-bench -list
//	verdict-bench -exp table4
//	verdict-bench -exp all -scale full -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale = flag.String("scale", "small", "small | full")
		seed  = flag.Int64("seed", 1, "random seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	opts := experiments.Options{Scale: experiments.Small, Seed: *seed}
	switch *scale {
	case "small":
	case "full":
		opts.Scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (small|full)\n", *scale)
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	failed := false
	for _, id := range ids {
		runner, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
