// Command verdict-server runs the concurrent serving layer: a long-running
// multi-session SQL service over one shared Verdict pipeline. N clients
// query and stream appends against a single synopsis, so the system gets
// smarter with every query any of them issues.
//
// Usage:
//
//	verdict-server -addr :8765 -dataset customer1 -rows 100000
//	verdict-server -dataset tpch -rows 200000 -fraction 0.1 -max-inflight 32
//	verdict-server -shards 16 -rebuild-after-rows 50000 -rebuild-quiet 5s
//	verdict-server -log-format json -log-level debug -pprof-addr localhost:6060
//
// Endpoints (JSON over HTTP):
//
//	POST /query        {"sql": "...", "session": "alice", "exact": false, "budget_ms": 0}
//	POST /query/stream {"sql": "...", "min_rows": 4096, "pace_ms": 0, "target_ci": 0, "cursor": null}
//	                   (NDJSON: one chunk per increment; target_ci stops the stream server-side
//	                   once the raw CI is tight enough; POSTing a chunk's cursor back resumes an
//	                   interrupted stream bit-identically — 410 once evicted past -max-retained-gens)
//	POST /subscribe    {"sql": "...", "delta_ci": 0, "delta_rel": 0.01, "debounce_ms": 0}
//	                   (long-lived NDJSON: an immediate snapshot chunk, then one push per
//	                   append/rebuild/train whose estimate or CI moved past the thresholds;
//	                   each chunk replays bit-identically at its pinned sample_gen)
//	POST /append       {"rows": [[12.5, "east", 99.0], ...]} or {"generate": 5000}
//	POST /train        {}
//	POST /rebuild      {}                         (re-shuffle the sample; epoch swap; optional
//	                   {"partitions": 4, "stratum_column": "week"} re-lays-out into stratified
//	                   partitions — invalid columns get a structured 400, code "invalid_column")
//	GET  /stats                                   (incl. per-shard synopsis + metrics_summary digest)
//	GET  /metrics                                 (Prometheus text format: stage latencies, HTTP, streams, synopsis)
//	POST /save         {"path": "synopsis.json"}  (file name inside -snapshot-dir)
//	POST /load         {"path": "synopsis.json"}
//
// Every response carries an X-Request-ID header (honoring a client-supplied
// one) that also appears in error envelopes and the structured request log.
//
// SIGINT/SIGTERM begin a graceful drain: new requests are shed with 503
// while in-flight queries and streams finish, bounded by -drain-timeout.
//
// Drive it interactively with: verdict-cli -connect localhost:8765
// See the README operations guide for every flag and a curl quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8765", "listen address")
		dataset   = flag.String("dataset", "customer1", "customer1 | tpch | synthetic")
		rows      = flag.Int("rows", 100000, "base relation rows")
		fraction  = flag.Float64("fraction", 0.2, "offline sample fraction")
		seed      = flag.Int64("seed", 1, "random seed")
		inflight  = flag.Int("max-inflight", 16, "bounded worker pool size (admission control)")
		queueWait = flag.Duration("queue-wait", 2*time.Second, "max wait for a worker slot before 503")
		snapDir   = flag.String("snapshot-dir", "", "directory for /save and /load synopsis snapshots (empty disables them)")
		shards    = flag.Int("shards", 0, "synopsis shards (0 = default 8); writer throughput scales with shards on multi-function workloads")
		rebRows   = flag.Int("rebuild-after-rows", 0, "auto-rebuild the sample after this many appended rows land (0 disables auto-rebuild)")
		rebQuiet  = flag.Duration("rebuild-quiet", 2*time.Second, "idle period required before an armed auto-rebuild fires")
		maxSubs   = flag.Int("max-subscriptions", 0, "cap on concurrent /subscribe streams (0 = default 256); excess subscribers are shed with 503")
		drainWait = flag.Duration("drain-timeout", 15*time.Second, "on SIGINT/SIGTERM, how long to let in-flight queries and streams finish before closing")
		maxGens   = flag.Int("max-retained-gens", 0, "retired sample generations kept for replay/resume (0 keeps all; bounded servers answer behind-horizon cursors with 410)")
		parts     = flag.Int("partitions", 0, "split the sample into this many stratified partitions (0 = flat sample); answers are invariant under the count")
		stratCol  = flag.String("stratum-column", "", "numeric column the stratified layout range-partitions on (requires -partitions; empty = round-robin strata)")
		logFormat = flag.String("log-format", "text", "request log format: text | json")
		logLevel  = flag.String("log-level", "info", "request log level: debug | info | warn | error")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty disables; keep it off public interfaces)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	table, err := buildTable(*dataset, *rows, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sample, err := aqp.BuildSample(table, *fraction, 0, *seed+1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// One registry spans every layer: the core pipeline reports per-stage
	// latency through the StageTimer, the server adds HTTP/stream/synopsis
	// families, and GET /metrics scrapes them all.
	// Validate the partitioned-layout flags before wiring: core's config
	// application is fail-soft (library callers fall back to the flat
	// layout), but an operator's typo should fail the boot loudly.
	if *stratCol != "" && *parts <= 0 {
		fmt.Fprintln(os.Stderr, "-stratum-column requires -partitions >= 1")
		os.Exit(1)
	}
	if *parts > 0 && *stratCol != "" {
		col, ok := table.Schema().Lookup(*stratCol)
		if !ok {
			fmt.Fprintf(os.Stderr, "-stratum-column: table %s has no column %q\n", table.Name(), *stratCol)
			os.Exit(1)
		}
		if table.Schema().Col(col).Kind != storage.Numeric {
			fmt.Fprintf(os.Stderr, "-stratum-column: %q is categorical; the stratified layout needs a numeric column\n", *stratCol)
			os.Exit(1)
		}
	}

	reg := obs.NewRegistry()
	sys := core.NewSystem(aqp.NewEngine(table, sample, aqp.CachedCost), core.Config{
		NumShards:       *shards,
		MaxRetainedGens: *maxGens,
		NumPartitions:   *parts,
		StratumColumn:   *stratCol,
		Stages:          obs.NewQueryStages(reg),
	})

	srv := server.New(sys, server.Config{
		MaxInFlight:      *inflight,
		QueueWait:        *queueWait,
		SnapshotDir:      *snapDir,
		RebuildAfterRows: *rebRows,
		RebuildQuiet:     *rebQuiet,
		MaxSubscriptions: *maxSubs,
		Logger:           logger,
		Metrics:          reg,
		Generate: func(n int, genSeed int64) (*storage.Table, error) {
			return buildTable(*dataset, n, genSeed)
		},
	})
	defer srv.Close()

	logger.Info("verdict-server starting",
		slog.String("addr", *addr),
		slog.String("dataset", *dataset),
		slog.Int("rows", table.Rows()),
		slog.Float64("sample_fraction", *fraction),
		slog.Int("worker_slots", *inflight),
		slog.Int("synopsis_shards", sys.Verdict().NumShards()),
		slog.String("columns", strings.Join(table.Schema().Names(), ", ")),
	)
	if *rebRows > 0 {
		logger.Info("auto-rebuild armed", slog.Int("after_rows", *rebRows), slog.Duration("quiet", *rebQuiet))
	}
	if *maxGens > 0 {
		logger.Info("replay horizon bounded", slog.Int("max_retained_gens", *maxGens))
	}
	if *parts > 0 {
		logger.Info("stratified sample layout",
			slog.Int("partitions", *parts), slog.String("stratum_column", *stratCol))
	}

	if *pprofAddr != "" {
		go servePprof(logger, *pprofAddr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Error("listen failed", slog.String("err", err.Error()))
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	// Graceful drain: shed new requests with 503, let in-flight queries and
	// streams run to their final chunk (bounded by -drain-timeout), then
	// close the listener and idle connections.
	logger.Info("draining: finishing in-flight requests (signal again to force quit)",
		slog.Duration("timeout", *drainWait))
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Warn("drain incomplete", slog.String("err", err.Error()))
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		logger.Warn("shutdown", slog.String("err", err.Error()))
		_ = httpSrv.Close()
	}
	logger.Info("verdict-server stopped")
}

// servePprof exposes net/http/pprof on its own listener, so profiling
// never shares a port (or the admission control path) with the query API.
func servePprof(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", slog.String("addr", addr))
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("pprof listener failed", slog.String("err", err.Error()))
	}
}

func buildTable(dataset string, rows int, seed int64) (*storage.Table, error) {
	switch dataset {
	case "customer1":
		return workload.GenerateCustomer1(rows, seed)
	case "tpch":
		return workload.GenerateTPCH(rows, seed)
	case "synthetic":
		spec := workload.DefaultSyntheticSpec()
		spec.Rows = rows
		spec.Seed = seed
		syn, err := workload.GenerateSynthetic(spec)
		if err != nil {
			return nil, err
		}
		return syn.Table, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (customer1|tpch|synthetic)", dataset)
	}
}
