// Command verdict-server runs the concurrent serving layer: a long-running
// multi-session SQL service over one shared Verdict pipeline. N clients
// query and stream appends against a single synopsis, so the system gets
// smarter with every query any of them issues.
//
// Usage:
//
//	verdict-server -addr :8765 -dataset customer1 -rows 100000
//	verdict-server -dataset tpch -rows 200000 -fraction 0.1 -max-inflight 32
//
// Endpoints (JSON over HTTP):
//
//	POST /query  {"sql": "...", "session": "alice", "exact": false, "budget_ms": 0}
//	POST /append {"rows": [[12.5, "east", 99.0], ...]} or {"generate": 5000}
//	POST /train  {}
//	GET  /stats
//	POST /save   {"path": "synopsis.json"}   (file name inside -snapshot-dir)
//	POST /load   {"path": "synopsis.json"}
//
// Drive it interactively with: verdict-cli -connect localhost:8765
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8765", "listen address")
		dataset   = flag.String("dataset", "customer1", "customer1 | tpch | synthetic")
		rows      = flag.Int("rows", 100000, "base relation rows")
		fraction  = flag.Float64("fraction", 0.2, "offline sample fraction")
		seed      = flag.Int64("seed", 1, "random seed")
		inflight  = flag.Int("max-inflight", 16, "bounded worker pool size (admission control)")
		queueWait = flag.Duration("queue-wait", 2*time.Second, "max wait for a worker slot before 503")
		snapDir   = flag.String("snapshot-dir", "", "directory for /save and /load synopsis snapshots (empty disables them)")
	)
	flag.Parse()

	table, err := buildTable(*dataset, *rows, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sample, err := aqp.BuildSample(table, *fraction, 0, *seed+1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys := core.NewSystem(aqp.NewEngine(table, sample, aqp.CachedCost), core.Config{})

	srv := server.New(sys, server.Config{
		MaxInFlight: *inflight,
		QueueWait:   *queueWait,
		SnapshotDir: *snapDir,
		Generate: func(n int, genSeed int64) (*storage.Table, error) {
			return buildTable(*dataset, n, genSeed)
		},
	})

	log.Printf("verdict-server on %s — %s (%d rows, %.0f%% sample, %d worker slots)",
		*addr, *dataset, table.Rows(), *fraction*100, *inflight)
	log.Printf("columns: %s", strings.Join(table.Schema().Names(), ", "))
	log.Printf("endpoints: POST /query /append /train /save /load, GET /stats")
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}

func buildTable(dataset string, rows int, seed int64) (*storage.Table, error) {
	switch dataset {
	case "customer1":
		return workload.GenerateCustomer1(rows, seed)
	case "tpch":
		return workload.GenerateTPCH(rows, seed)
	case "synthetic":
		spec := workload.DefaultSyntheticSpec()
		spec.Rows = rows
		spec.Seed = seed
		syn, err := workload.GenerateSynthetic(spec)
		if err != nil {
			return nil, err
		}
		return syn.Table, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (customer1|tpch|synthetic)", dataset)
	}
}
