// Command datagen materializes the repository's synthetic datasets and
// query traces as CSV/SQL files, for inspection or for use outside the Go
// toolchain.
//
// Usage:
//
//	datagen -dataset tpch -rows 100000 -out tpch.csv
//	datagen -dataset customer1 -rows 50000 -out events.csv -trace trace.sql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "customer1", "customer1 | tpch | synthetic | uci")
		rows    = flag.Int("rows", 50000, "rows to generate")
		out     = flag.String("out", "", "output CSV path (default stdout)")
		trace   = flag.String("trace", "", "also write a query trace to this path (customer1 only)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var (
		table *storage.Table
		err   error
	)
	switch *dataset {
	case "customer1":
		table, err = workload.GenerateCustomer1(*rows, *seed)
	case "tpch":
		table, err = workload.GenerateTPCH(*rows, *seed)
	case "synthetic":
		spec := workload.DefaultSyntheticSpec()
		spec.Rows = *rows
		spec.Seed = *seed
		var syn *workload.Synthetic
		syn, err = workload.GenerateSynthetic(spec)
		if syn != nil {
			table = syn.Table
		}
	case "uci":
		table, err = workload.GenerateUCILike(workload.UCIDatasetNames[0], 0, *seed)
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := table.WriteCSV(bw); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d rows × %d columns to %s\n", table.Rows(), table.Schema().Len(), *out)
	}

	if *trace != "" && *dataset == "customer1" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tw := bufio.NewWriter(f)
		spec := workload.DefaultCustomer1TraceSpec()
		spec.Seed = *seed
		n := 0
		for _, e := range workload.GenerateCustomer1Trace(spec) {
			fmt.Fprintf(tw, "-- %s supported=%v\n%s;\n", e.At.Format("2006-01-02T15:04:05"), e.Supported, e.SQL)
			n++
		}
		if err := tw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace queries to %s\n", n, *trace)
	}
}
