package repro

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope — the repository uses inline links.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks walks every .md file in the repository and verifies
// that relative links point at files (or directories) that exist — the
// docs-rot gate the CI docs job runs. External URLs and pure anchors are
// skipped; a "#fragment" suffix on a relative link is stripped before the
// existence check.
func TestMarkdownLinks(t *testing.T) {
	root := "."
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}
	// Quote archives hold verbatim excerpts of *other* repositories'
	// documents; their relative links point into those repos, not ours.
	quoted := map[string]bool{"SNIPPETS.md": true, "PAPERS.md": true}
	checked := 0
	for _, md := range mdFiles {
		if quoted[filepath.Base(md)] {
			continue
		}
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links checked; the regexp or the docs regressed")
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(mdFiles))
}
